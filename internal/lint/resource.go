package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// analyzerResourceLifecycle generalizes span-discipline into a
// contract-driven Open/Close pairing check running on the dataflow
// layer (ssa.go/dataflow.go): every resource acquired through a
// constructor in the contract table must be released on every path out
// of the acquiring function — including early error returns, the paths
// the deferred-maintenance engine takes exactly when something already
// went wrong. The contract table below is the extension point the
// durable-storage arc (ROADMAP item 3) will grow: WAL segments and
// page files get a row each, and the whole analysis comes for free.
//
// Discharge rules: a call to the contract's closer (direct, deferred,
// or inside a deferred literal) closes the resource; letting it escape
// — returned, aliased into another variable, stored in a composite or
// field, sent on a channel, or captured by a non-deferred closure —
// transfers the obligation to the new owner. Passing the resource as a
// plain call argument does NOT discharge it: io.Copy, bufio.NewWriter,
// and pprof.StartCPUProfile all borrow the handle, and the caller
// still owns the close (this is exactly the shape of the leak class
// this analyzer exists for). For error-paired constructors (os.Create
// and friends) the obligation only holds on paths where the paired
// error is nil — the branch-sensitive edges of the CFG carve those
// paths out. Reports are must-miss: a resource is flagged only when no
// path into the return has closed it, so merge-point ambiguity never
// produces noise.
var analyzerResourceLifecycle = &Analyzer{
	Name: "resource-lifecycle",
	Doc:  "contract-paired resources (files, tickers, pollers) must be closed on every path",
	Run:  runResourceLifecycle,
}

// Resource lattice bits.
const (
	rOpen    fact = 1 << iota // acquired, obligation pending
	rClosed                   // closer called on some path into here
	rEscaped                  // ownership transferred out of this scope
)

// resourceContract is one Open/Close pairing: the constructor package
// path and name, the method that releases the resource, whether the
// constructor pairs the resource with an error result (obligation
// begins only when that error is nil), and a human label for reports.
type resourceContract struct {
	pkg       string
	fn        string
	closer    string
	errPaired bool
	kind      string
}

// resourceContracts is the pairing table. cfg-relative rows let
// fixtures rebind the module-internal constructors.
func resourceContracts(cfg Config) []resourceContract {
	return []resourceContract{
		{pkg: "os", fn: "Create", closer: "Close", errPaired: true, kind: "file"},
		{pkg: "os", fn: "Open", closer: "Close", errPaired: true, kind: "file"},
		{pkg: "os", fn: "OpenFile", closer: "Close", errPaired: true, kind: "file"},
		{pkg: "time", fn: "NewTicker", closer: "Stop", kind: "ticker"},
		{pkg: "time", fn: "NewTimer", closer: "Stop", kind: "timer"},
		{pkg: "compress/gzip", fn: "NewReader", closer: "Close", errPaired: true, kind: "gzip reader"},
		{pkg: "compress/gzip", fn: "NewWriter", closer: "Close", kind: "gzip writer"},
		{pkg: cfg.ObsPkg + "/runtimebridge", fn: "New", closer: "Close", kind: "runtime-metrics poller"},
	}
}

func runResourceLifecycle(p *Pass) {
	contracts := resourceContracts(p.Cfg)
	eachScope(p, func(body *ast.BlockStmt, cfg *funcCFG) {
		checkResourceScope(p, contracts, cfg)
	})
}

// resOpen is one tracked acquisition in the current scope.
type resOpen struct {
	obj    types.Object
	name   string
	closer string
	kind   string
	pos    token.Pos
}

// resourceFlow is the flowClient for one scope.
type resourceFlow struct {
	p      *Pass
	binds  map[ast.Node][]*resOpen         // binding statement → acquisitions
	opens  map[types.Object]*resOpen       // resource object → acquisition
	guards map[types.Object][]types.Object // paired error object → resource objects
}

func checkResourceScope(p *Pass, contracts []resourceContract, cfg *funcCFG) {
	if cfg == nil {
		return
	}
	rf := &resourceFlow{
		p:      p,
		binds:  map[ast.Node][]*resOpen{},
		opens:  map[types.Object]*resOpen{},
		guards: map[types.Object][]types.Object{},
	}
	// Prepass: find acquisitions among the scope's own CFG nodes. Only
	// plain-ident bindings create obligations; a constructor result
	// stored straight into a field or index already belongs to the
	// structure it was stored in.
	for _, b := range cfg.blocks {
		for _, n := range b.nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			c := matchContract(p, contracts, call)
			if c == nil || len(as.Lhs) == 0 {
				continue
			}
			resObj := localObj(p.Pkg.Info, as.Lhs[0])
			if resObj == nil {
				continue
			}
			ro := &resOpen{obj: resObj, name: identName(as.Lhs[0]), closer: c.closer, kind: c.kind, pos: call.Pos()}
			rf.binds[n] = append(rf.binds[n], ro)
			rf.opens[resObj] = ro
			if c.errPaired && len(as.Lhs) > 1 {
				if errObj := localObj(p.Pkg.Info, as.Lhs[1]); errObj != nil {
					rf.guards[errObj] = append(rf.guards[errObj], resObj)
				}
			}
		}
	}
	if len(rf.opens) == 0 {
		return
	}
	runForward(cfg, rf, func(n ast.Node, facts flowFacts) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		// The return's own effects count: `return f.Close()` closes,
		// `return f, nil` escapes — judge what is live AFTER them.
		eff := facts.clone()
		rf.transfer(n, eff)
		var leaked []*resOpen
		for obj, v := range eff {
			if v&rOpen != 0 && v&(rClosed|rEscaped) == 0 {
				if ro := rf.opens[obj]; ro != nil {
					leaked = append(leaked, ro)
				}
			}
		}
		sort.Slice(leaked, func(i, j int) bool { return leaked[i].pos < leaked[j].pos })
		for _, ro := range leaked {
			p.Reportf(ret.Pos(),
				"return leaves %s %s (opened at line %d) unclosed on this path; call %s.%s before returning or defer it",
				ro.kind, ro.name, p.Pkg.Fset.Position(ro.pos).Line, ro.name, ro.closer)
		}
	})
}

func (rf *resourceFlow) transfer(n ast.Node, facts flowFacts) {
	for _, ro := range rf.binds[n] {
		facts[ro.obj] = rOpen
	}
	// Scan the node for discharges. Closer calls count wherever they
	// appear (direct, in an if-init fold, in a return expression, under
	// defer, inside a deferred literal); other appearances classify as
	// escapes or stay neutral (call arguments: borrowed, not moved).
	info := rf.p.Pkg.Info
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if ast.Node(m) == n {
					return true
				}
				// The literal body still discharges via closer calls
				// (deferred-cleanup closures); any other captured use of a
				// tracked resource escapes below, via the Ident case.
				walk(m.Body, true)
				return false
			case *ast.CallExpr:
				sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := localObj(info, sel.X)
				if ro := rf.opens[obj]; ro != nil && sel.Sel.Name == ro.closer {
					if v, tracked := facts[obj]; tracked {
						facts[obj] = v | rClosed
					}
				}
			case *ast.Ident:
				if inLit {
					// Captured by a closure: the closure may outlive every
					// path of this scope, so ownership moves to it.
					if obj := info.Uses[m]; obj != nil && rf.opens[obj] != nil {
						if v, tracked := facts[obj]; tracked {
							facts[obj] = v | rEscaped
						}
					}
				}
			case *ast.ReturnStmt:
				rf.markDirect(m.Results, facts)
			case *ast.AssignStmt:
				if _, isBind := rf.binds[ast.Node(m)]; !isBind {
					rf.markDirect(m.Rhs, facts)
				}
			case *ast.CompositeLit:
				rf.markDirect(m.Elts, facts)
			case *ast.KeyValueExpr:
				rf.markDirect([]ast.Expr{m.Value}, facts)
			case *ast.SendStmt:
				rf.markDirect([]ast.Expr{m.Value}, facts)
			}
			return true
		})
	}
	walk(n, false)
}

// markDirect marks tracked resources appearing as direct elements of
// exprs (not merely mentioned in subexpressions) as escaped.
func (rf *resourceFlow) markDirect(exprs []ast.Expr, facts flowFacts) {
	for _, e := range exprs {
		obj := localObj(rf.p.Pkg.Info, e)
		if obj == nil || rf.opens[obj] == nil {
			continue
		}
		if v, tracked := facts[obj]; tracked {
			facts[obj] = v | rEscaped
		}
	}
}

// refine kills the obligation along edges where a constructor's paired
// error is known non-nil: os.Create and friends return an invalid
// handle exactly when they return an error, so there is nothing to
// close on that branch.
func (rf *resourceFlow) refine(cond ast.Expr, truth bool, facts flowFacts) {
	obj, isNil, ok := nilCompare(rf.p.Pkg.Info, cond)
	if !ok {
		return
	}
	resources := rf.guards[obj]
	if len(resources) == 0 {
		return
	}
	errNonNil := (truth && !isNil) || (!truth && isNil)
	if !errNonNil {
		return
	}
	for _, res := range resources {
		delete(facts, res)
	}
}

// matchContract resolves call's callee against the contract table.
func matchContract(p *Pass, contracts []resourceContract, call *ast.CallExpr) *resourceContract {
	f := CalleeOf(p.Pkg.Info, call)
	if f == nil || f.Pkg() == nil {
		return nil
	}
	for i := range contracts {
		c := &contracts[i]
		if f.Name() == c.fn && f.Pkg().Path() == c.pkg {
			return c
		}
	}
	return nil
}

func identName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "resource"
}
