package lint

import (
	"go/ast"
	"go/types"
)

// dataflow.go is the forward-analysis half of the SSA-lite layer: a
// reusable worklist fixpoint over the funcCFG of ssa.go, in the same
// iterate-to-stable-then-report style as the lock-state engine
// (lockstate.go), but function-local and branch-sensitive.
//
// Facts are per-object bitsets. A client defines what the bits mean
// (resource-lifecycle: open/closed/escaped; nilness: nil/non-nil;
// error-flow: pending/propagated), a transfer function that applies a
// statement's effect, and a refine function that narrows facts along a
// conditional edge. The framework joins with set union — at a merge
// point an object may be in any state it could be in on either path —
// which makes transfer+refine monotone and the fixpoint finite.

// fact is a bitset of possible abstract states for one tracked object.
// Bit meanings are private to each client; the framework only unions
// and compares them.
type fact uint16

// flowFacts maps tracked objects to their possible states at a program
// point. An absent object is untracked (bottom), which every client
// treats as "nothing to report".
type flowFacts map[types.Object]fact

func (f flowFacts) clone() flowFacts {
	out := make(flowFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// joinInto unions src into dst and reports whether dst changed.
func joinInto(dst, src flowFacts) bool {
	changed := false
	for k, v := range src {
		if old, ok := dst[k]; !ok || old|v != old {
			dst[k] = old | v
			changed = true
		}
	}
	return changed
}

// flowClient is one analysis: the statement transfer function and the
// branch refinement. Both mutate facts in place.
type flowClient interface {
	// transfer applies the effect of executing n.
	transfer(n ast.Node, facts flowFacts)
	// refine narrows facts given that cond evaluated to truth. Called
	// on conditional edges only; clients that cannot interpret cond
	// leave facts untouched.
	refine(cond ast.Expr, truth bool, facts flowFacts)
}

// runForward runs the client to fixpoint over cfg, then makes one
// deterministic final pass in block order calling check(node, facts)
// with the facts holding immediately BEFORE each node executes (the
// lockstate.go shape: iterate silently, report once stable, so a loop
// body is judged against its stable facts, not its first-visit facts).
// check may be nil to run the fixpoint for its side effects alone.
func runForward(cfg *funcCFG, client flowClient, check func(n ast.Node, facts flowFacts)) {
	if cfg == nil {
		return
	}
	in := make([]flowFacts, len(cfg.blocks))
	for i := range in {
		in[i] = flowFacts{}
	}
	// Seed the worklist with every block, not just the entry: fact
	// propagation re-queues a block only when its in-facts change, and
	// an edge carrying no facts yet would otherwise leave its target
	// unvisited forever.
	queued := make([]bool, len(cfg.blocks))
	work := make([]*cfgBlock, len(cfg.blocks))
	copy(work, cfg.blocks)
	for i := range queued {
		queued[i] = true
	}
	// The lattice per object has at most 16 bits and join only grows
	// sets, so each block re-enters the worklist a bounded number of
	// times; the cap is a belt against a client with a non-monotone
	// transfer, mirroring the lock fixpoint's iteration bound.
	for steps, maxSteps := 0, (len(cfg.blocks)+1)*64; len(work) > 0 && steps < maxSteps; steps++ {
		b := work[0]
		work = work[1:]
		queued[b.id] = false
		out := in[b.id].clone()
		for _, n := range b.nodes {
			client.transfer(n, out)
		}
		for _, e := range b.succ {
			ef := out
			if e.cond != nil {
				ef = out.clone()
				client.refine(e.cond, e.truth, ef)
			}
			if joinInto(in[e.to.id], ef) && !queued[e.to.id] {
				work = append(work, e.to)
				queued[e.to.id] = true
			}
		}
	}
	if check == nil {
		return
	}
	for _, b := range cfg.blocks {
		facts := in[b.id].clone()
		for _, n := range b.nodes {
			check(n, facts)
			client.transfer(n, facts)
		}
	}
}

// nilCompare decomposes a condition into a nil comparison of a plain
// local: for `x == nil`, `nil == x`, `x != nil`, and `!`-wrapped forms
// it returns the compared object and whether truth of the condition
// means the object IS nil. ok is false for anything else (compound
// conditions, field selectors, calls).
func nilCompare(info *types.Info, cond ast.Expr) (obj types.Object, isNil bool, ok bool) {
	cond = ast.Unparen(cond)
	if u, isNot := cond.(*ast.UnaryExpr); isNot && u.Op.String() == "!" {
		obj, isNil, ok = nilCompare(info, u.X)
		return obj, !isNil, ok
	}
	bin, isBin := cond.(*ast.BinaryExpr)
	if !isBin {
		return nil, false, false
	}
	var eq bool
	switch bin.Op.String() {
	case "==":
		eq = true
	case "!=":
		eq = false
	default:
		return nil, false, false
	}
	side := func(e ast.Expr) (types.Object, bool) {
		id, isID := ast.Unparen(e).(*ast.Ident)
		if !isID {
			return nil, false
		}
		o := info.Uses[id]
		return o, o != nil
	}
	if isNilIdent(info, bin.Y) {
		if o, k := side(bin.X); k {
			return o, eq, true
		}
	}
	if isNilIdent(info, bin.X) {
		if o, k := side(bin.Y); k {
			return o, eq, true
		}
	}
	return nil, false, false
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || (id.Name == "nil" && info.Uses[id] == nil && info.Defs[id] == nil)
}

// localObj resolves e to the object of a plain local identifier
// (variable, parameter, or named result), or nil. The dataflow clients
// track only these: anything behind a selector or index is aliased
// state the function-local layer cannot reason about.
func localObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// eachScope invokes fn once per analyzable function scope in the
// package: every declared body and every function literal body, each
// with its memoized CFG. A literal is its own scope — facts do not
// flow between a function and the closures it creates; a closure
// capturing a tracked value shows up as an escape in the outer scope
// instead.
func eachScope(p *Pass, fn func(body *ast.BlockStmt, cfg *funcCFG)) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd.Body, p.Unit.cfgOf(fd))
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(lit.Body, p.Unit.litCFGOf(lit))
				}
				return true
			})
		}
	}
}

// baseIdent unwraps selector, index, star, and paren chains down to
// the root identifier of an lvalue-ish expression: p in p.f, m in
// m[k], x in (*x).f. Returns nil when the base is not a plain ident
// (a call result, a composite literal, ...).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
