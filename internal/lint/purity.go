package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// analyzerClosurePurity guards the property the paper's correctness
// argument rests on: a compiled delta program is a pure function of
// its input bags. algebra.Compile fuses each Figure-2 delta expression
// into a tree of closures; if one of those closures wrote a captured
// variable, or captured live engine state (a map, a bag, a storage
// table) instead of a compile-time constant, then compiled and
// interpreted evaluation could diverge — two refreshes of the same log
// window could disagree, and every INV_* invariant check downstream
// would be measuring a moving target.
//
// The analyzer walks the static call graph from the compile roots —
// every function named Compile in the algebra package, plus the Bind
// methods that compile predicates — restricted to algebra-package
// callees, and checks every outermost function literal in the reached
// functions:
//
//   - no write to a variable captured from outside the literal (direct
//     assignment, assignment through a selector/index on a captured
//     base, ++/--, delete, or channel send); mutating state through
//     the *State parameter is the sanctioned channel and is naturally
//     exempt, since the parameter is declared inside the literal;
//   - no capture of mutable engine state: a variable of map type, a
//     bag.Bag, or a storage Table. A *bag.Bag local that the compiling
//     function created fresh — Clone(), bag.New(), bag.FromTuples() —
//     is allowed (the closure privately owns the snapshot; this is the
//     Literal-node `lit := n.Bag.Clone()` idiom), as are journal-synced
//     bag.Index handles, whose mutation discipline is enforced on the
//     bag side.
//
// "Outermost" matters: the bag-builder callbacks a compiled node
// passes to Each/Project write an `out` bag declared inside the
// enclosing compiled closure — local state of one evaluation, not a
// capture across evaluations — so the capture boundary is the
// outermost literal, and nested literals are checked as part of it.
var analyzerClosurePurity = &Analyzer{
	Name: "closure-purity",
	Doc:  "closures compiled into delta programs must not write captures or capture mutable engine state",
	Run:  runClosurePurity,
}

func runClosurePurity(p *Pass) {
	if p.Pkg.Path != p.Cfg.AlgebraPkg {
		return // all compile roots and reached functions live there
	}
	u := p.Unit
	u.ensureDecls()
	// Roots: Compile entry points and predicate Bind methods.
	var roots []*declInfo
	for _, di := range u.declList {
		if di.pkg.Path != p.Cfg.AlgebraPkg {
			continue
		}
		name := di.fn.Name()
		if name == "Compile" || name == "Bind" {
			roots = append(roots, di)
		}
	}
	// BFS over static call/defer edges within the algebra package.
	// Dynamic edges are excluded on purpose: a compiled closure calling
	// a bound predicate value would otherwise pull in every
	// signature-compatible function in the module.
	reached := map[*types.Func]*declInfo{}
	queue := append([]*declInfo(nil), roots...)
	for len(queue) > 0 {
		di := queue[0]
		queue = queue[1:]
		if reached[di.fn] != nil {
			continue
		}
		reached[di.fn] = di
		for _, e := range u.edgesFrom(di.fn) {
			if e.kind != edgeCall && e.kind != edgeDefer {
				continue
			}
			if e.callee.pkg.Path != p.Cfg.AlgebraPkg {
				continue
			}
			if reached[e.callee.fn] == nil {
				queue = append(queue, e.callee)
			}
		}
	}
	var order []*declInfo
	for _, di := range reached {
		order = append(order, di)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].decl.Pos() < order[j].decl.Pos() })
	for _, di := range order {
		var outermost []*ast.FuncLit
		ast.Inspect(di.decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				outermost = append(outermost, lit)
				return false // nested literals belong to this one's scope
			}
			return true
		})
		for _, lit := range outermost {
			p.checkCompiledClosure(di, lit)
		}
	}
}

// checkCompiledClosure enforces the two purity rules over one
// outermost compiled literal.
func (p *Pass) checkCompiledClosure(di *declInfo, lit *ast.FuncLit) {
	info := di.pkg.Info
	captured := func(obj types.Object) bool {
		if obj == nil || !obj.Pos().IsValid() {
			return false
		}
		v, isVar := obj.(*types.Var)
		// Struct fields are excluded: a field's definition is always
		// outside the literal, and field access through the *State
		// parameter is the sanctioned mutation channel.
		return isVar && !v.IsField() && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
	}
	reportedWrite := map[types.Object]bool{}
	reportedCapture := map[types.Object]bool{}
	writeTo := func(e ast.Expr) {
		id := baseIdent(e)
		if id == nil {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if !captured(obj) || reportedWrite[obj] {
			return
		}
		reportedWrite[obj] = true
		p.Reportf(id.Pos(),
			"compiled closure writes captured variable %s; delta programs must be pure functions of their input bags (mutate only through *State)",
			id.Name)
	}
	ast.Inspect(lit, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writeTo(lhs)
			}
		case *ast.IncDecStmt:
			writeTo(n.X)
		case *ast.SendStmt:
			writeTo(n.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					writeTo(n.Args[0])
				}
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if !captured(obj) || reportedCapture[obj] {
				return true
			}
			kind, banned := p.mutableEngineState(obj.Type())
			if !banned || p.freshLocalBag(di, obj) {
				return true
			}
			reportedCapture[obj] = true
			p.Reportf(n.Pos(),
				"compiled closure captures %s %s; snapshot it at compile time (Clone/bag.New) or reach it through *State",
				kind, n.Name)
		}
		return true
	})
}

// mutableEngineState classifies types whose capture would make a
// compiled closure observe (or mutate) live engine state: maps, bags,
// and storage tables. bag.Index handles are deliberately absent — they
// are journal-synced, and the bag layer owns their discipline.
func (p *Pass) mutableEngineState(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == p.Cfg.BagPkg && obj.Name() == "Bag":
				return "live bag", true
			case obj.Pkg().Path() == p.Cfg.StoragePkg && obj.Name() == "Table":
				return "storage table", true
			}
		}
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		return "mutable map", true
	}
	return "", false
}

// freshLocalBag reports whether obj is a local of the compiling
// function initialized exactly once from a snapshot constructor
// (Clone, New, FromTuples) — a private copy the closure may own.
func (p *Pass) freshLocalBag(di *declInfo, obj types.Object) bool {
	info := di.pkg.Info
	defs := 0
	fresh := false
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if info.Defs[id] != obj && info.Uses[id] != obj {
				continue
			}
			defs++
			if len(as.Lhs) != len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			name := calleeName(info, call)
			if name == "Clone" || name == "New" || name == "FromTuples" {
				fresh = true
			}
		}
		return true
	})
	return fresh && defs == 1
}

// calleeName returns the bare name of a call's callee (function or
// method), or "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if f := CalleeOf(info, call); f != nil {
		return f.Name()
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
