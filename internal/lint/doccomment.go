package lint

import (
	"go/ast"
	"go/token"
)

// analyzerDocComment enforces godoc discipline in the packages listed
// in Config.DocPkgs: every exported top-level identifier — functions,
// methods on exported types, type declarations, and const/var specs —
// must carry a doc comment. The observability layer is
// documentation-gated: an exported metric accessor without a doc
// comment is an API surface users meet in docs/observability.md with
// no explanation. A doc comment on a const/var/type block covers the
// specs inside it (the idiomatic enum pattern).
var analyzerDocComment = &Analyzer{
	Name: "doc-comment",
	Doc:  "exported identifiers in documented packages need doc comments",
	Run:  runDocComment,
}

func runDocComment(p *Pass) {
	if !docPkg(p.Cfg.DocPkgs, p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedRecv(d) {
					continue // methods on unexported types are internal API
				}
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				p.Reportf(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // block doc covers every spec inside
				}
				switch d.Tok {
				case token.TYPE:
					for _, spec := range d.Specs {
						ts := spec.(*ast.TypeSpec)
						if ts.Name.IsExported() && ts.Doc == nil {
							p.Reportf(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
						}
					}
				case token.CONST, token.VAR:
					for _, spec := range d.Specs {
						vs := spec.(*ast.ValueSpec)
						if vs.Doc != nil || vs.Comment != nil {
							continue // per-spec doc or trailing comment
						}
						for _, n := range vs.Names {
							if n.IsExported() {
								kind := "var"
								if d.Tok == token.CONST {
									kind = "const"
								}
								p.Reportf(n.Pos(), "exported %s %s has no doc comment", kind, n.Name)
							}
						}
					}
				}
			}
		}
	}
}

func docPkg(pkgs []string, path string) bool {
	for _, p := range pkgs {
		if p == path {
			return true
		}
	}
	return false
}

// exportedRecv reports whether the method's receiver base type is
// exported.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if ie, ok := t.(*ast.IndexExpr); ok {
		t = ie.X
	}
	if ie, ok := t.(*ast.IndexListExpr); ok {
		t = ie.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}
