package lint

import (
	"go/ast"
	"go/types"
)

// analyzerInvariantTouch guards the database invariants of Figure 1
// (INV_BL, INV_DT, INV_C): they are preserved only because every
// mutation of MV, ∇MV/△MV, or the logs goes through the Figure 3
// transactions (makesafe_*, refresh_*, propagate_*), whose
// invariant-preservation the paper proves (Theorems 1-5). Any other
// code path that writes a table from inside the core package is a
// latent invariant violation, so table mutation in the core package —
// storage.Table.Replace/Clear/Insert/Delete, bag mutators reached
// through Table.Data(), and txn.ApplyAssignments — is only allowed
// inside the blessed entry points listed in Config.Blessed.
var analyzerInvariantTouch = &Analyzer{
	Name: "invariant-touch",
	Doc:  "maintained tables mutated only by blessed refresh_*/propagate_*/makesafe_* entry points",
	Run:  runInvariantTouch,
}

var tableMutators = map[string]bool{
	"Replace": true, "Clear": true, "Insert": true, "Delete": true,
}

func runInvariantTouch(p *Pass) {
	if p.Pkg.Path != p.Cfg.CorePkg {
		return
	}
	blessed := map[string]bool{}
	for _, n := range p.Cfg.Blessed {
		blessed[n] = true
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || blessed[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := CalleeOf(info, call)
				if f == nil {
					return true
				}
				switch {
				case tableMutators[f.Name()] && isMethodOn(f, p.Cfg.StoragePkg, "Table"):
					p.Reportf(call.Pos(),
						"%s mutates a table via Table.%s outside the blessed maintenance entry points; route it through a refresh_*/propagate_*/makesafe_* transaction (Figure 3)",
						fd.Name.Name, f.Name())
				case bagMutators[f.Name()] && isMethodOn(f, p.Cfg.BagPkg, "Bag") && mutatesTableBag(info, call, p.Cfg.StoragePkg):
					p.Reportf(call.Pos(),
						"%s mutates table contents via Bag.%s outside the blessed maintenance entry points; route it through a refresh_*/propagate_*/makesafe_* transaction (Figure 3)",
						fd.Name.Name, f.Name())
				case f.Name() == "ApplyAssignments" && f.Pkg() != nil && f.Pkg().Path() == p.Cfg.TxnPkg:
					p.Reportf(call.Pos(),
						"%s applies table assignments outside the blessed maintenance entry points; route it through a refresh_*/propagate_*/makesafe_* transaction (Figure 3)",
						fd.Name.Name)
				}
				return true
			})
		}
	}
}

// mutatesTableBag reports whether a bag-mutator call's receiver chain
// passes through storage.Table.Data() — i.e. the bag being mutated is
// live table contents, not a local scratch bag.
func mutatesTableBag(info *types.Info, call *ast.CallExpr, storagePkg string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for x := ast.Unparen(sel.X); ; {
		c, ok := x.(*ast.CallExpr)
		if !ok {
			return false
		}
		if f := CalleeOf(info, c); f != nil && f.Name() == "Data" && isMethodOn(f, storagePkg, "Table") {
			return true
		}
		inner, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		x = ast.Unparen(inner.X)
	}
}
