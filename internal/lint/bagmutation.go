package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerBagMutation protects the pure-algebra assumption behind the
// paper's DEL/ADD correctness (Section 2.1, Figure 2): the bag algebra
// operators are pure functions, and the differential queries ∇(T,Q) and
// △(T,Q) are only correct if evaluating one expression never mutates an
// operand another expression will read. Concretely: a function that
// receives a *bag.Bag parameter must not call a mutating method on it
// (Add, AddBag, Remove, Clear) unless its name carries an explicit
// in-place marker ("Mutate", "Apply", or "InPlace"), which documents
// the ownership transfer at every call site.
var analyzerBagMutation = &Analyzer{
	Name: "bag-mutation",
	Doc:  "functions taking *bag.Bag must not mutate it unless named *Mutate*/*Apply*/*InPlace*",
	Run:  runBagMutation,
}

var bagMutators = map[string]bool{
	"Add": true, "AddBag": true, "Remove": true, "Clear": true,
}

func hasInPlaceMarker(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "mutate") || strings.Contains(l, "apply") || strings.Contains(l, "inplace")
}

func runBagMutation(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			if hasInPlaceMarker(fd.Name.Name) {
				continue
			}
			// Bag-typed parameters (receivers are exempt: the Bag
			// methods themselves are the mutation primitives).
			params := map[types.Object]bool{}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					obj := info.Defs[name]
					if obj != nil && isPtrToNamed(obj.Type(), p.Cfg.BagPkg, "Bag") {
						params[obj] = true
					}
				}
			}
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !bagMutators[sel.Sel.Name] {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || !params[info.Uses[id]] {
					return true
				}
				f := CalleeOf(info, call)
				if f == nil || !isMethodOn(f, p.Cfg.BagPkg, "Bag") {
					return true
				}
				p.Reportf(call.Pos(),
					"%s mutates bag parameter %q via %s; bag operands are pure — clone first, or mark the function with Mutate/Apply/InPlace",
					fd.Name.Name, id.Name, sel.Sel.Name)
				return true
			})
		}
	}
}
