package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerSpanDiscipline enforces the tracing contract of
// internal/obs/trace: every span returned by a Start*/start* call must
// be ended on all paths, or the trace tree it belongs to never
// finishes and the whole transaction silently vanishes from the ring
// buffer. A span obligation is discharged by calling End/EndExplicit
// on it (directly, deferred, or inside a function literal), or by
// letting the span escape — returned, passed to another call, or
// stored — in which case the receiver inherits the obligation. The
// trace package itself is exempt: it is the implementation being
// disciplined, not a client.
var analyzerSpanDiscipline = &Analyzer{
	Name: "span-discipline",
	Doc:  "every *trace.Span returned by a Start* call must be ended on all paths or escape",
	Run:  runSpanDiscipline,
}

// spanObligation tracks one span-typed variable from a Start* call
// until the analyzer decides its End obligation is met.
type spanObligation struct {
	obj      types.Object
	name     string
	startPos token.Pos
	fn       ast.Node    // innermost enclosing function of the start call
	ends     []token.Pos // non-deferred End/EndExplicit call positions
	deferred bool        // some End runs under a defer
	escaped  bool        // span left this function's hands
}

func runSpanDiscipline(p *Pass) {
	if p.Pkg.Path == p.Cfg.TracePkg {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkSpansIn(fd, info)
		}
	}
}

// isSpanStart reports whether call invokes a Start*/start* function
// whose results include a *trace.Span, and returns the result indices
// that carry spans.
func (p *Pass) isSpanStart(call *ast.CallExpr) []int {
	f := CalleeOf(p.Pkg.Info, call)
	if f == nil {
		return nil
	}
	name := f.Name()
	if !strings.HasPrefix(name, "Start") && !strings.HasPrefix(name, "start") {
		return nil
	}
	t := p.TypeOf(call)
	if t == nil {
		return nil
	}
	var idx []int
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isPtrToNamed(tup.At(i).Type(), p.Cfg.TracePkg, "Span") {
				idx = append(idx, i)
			}
		}
		return idx
	}
	if isPtrToNamed(t, p.Cfg.TracePkg, "Span") {
		return []int{0}
	}
	return nil
}

// checkSpansIn analyzes one function declaration: collects span
// obligations from Start* calls, classifies every later use of each
// span variable, and reports obligations left undischarged.
func (p *Pass) checkSpansIn(fd *ast.FuncDecl, info *types.Info) {
	var obligations []*spanObligation

	// Pass 1: find Start* calls and how their results are bound. A
	// stack of enclosing function nodes attributes each start to its
	// innermost function (returns in outer functions don't exit it).
	var fnStack []ast.Node
	fnStack = append(fnStack, fd)
	var collect func(n ast.Node)
	collect = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != n {
					fnStack = append(fnStack, m)
					collect(m.Body)
					fnStack = fnStack[:len(fnStack)-1]
					return false
				}
			case *ast.ExprStmt:
				if call, ok := m.X.(*ast.CallExpr); ok && len(p.isSpanStart(call)) > 0 {
					p.Reportf(call.Pos(),
						"span returned by %s is discarded; it is never ended and its trace never finishes",
						startName(info, call))
				}
			case *ast.AssignStmt:
				if len(m.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(m.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, i := range p.isSpanStart(call) {
					if i >= len(m.Lhs) {
						continue
					}
					id, ok := m.Lhs[i].(*ast.Ident)
					if !ok {
						continue // stored into a field/index: escapes
					}
					if id.Name == "_" {
						p.Reportf(id.Pos(),
							"span returned by %s is assigned to _; it is never ended",
							startName(info, call))
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					obligations = append(obligations, &spanObligation{
						obj:      obj,
						name:     id.Name,
						startPos: call.Pos(),
						fn:       fnStack[len(fnStack)-1],
					})
				}
			}
			return true
		})
	}
	collect(fd.Body)
	if len(obligations) == 0 {
		return
	}
	byObj := map[types.Object]*spanObligation{}
	for _, ob := range obligations {
		byObj[ob.obj] = ob
	}

	// Pass 2: classify every use of each tracked variable, carrying the
	// full ancestor path so defer context and argument position are
	// visible.
	var path []ast.Node
	var classify func(n ast.Node)
	classify = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				path = path[:len(path)-1]
				return false
			}
			path = append(path, m)
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			ob := byObj[info.Uses[id]]
			if ob == nil {
				return true
			}
			p.classifyUse(ob, id, path)
			return true
		})
	}
	classify(fd.Body)

	// Verdicts.
	for _, ob := range obligations {
		if ob.escaped || ob.deferred {
			continue
		}
		if len(ob.ends) == 0 {
			p.Reportf(ob.startPos, "span %s is started but never ended on any path", ob.name)
			continue
		}
		firstEnd := ob.ends[0]
		for _, e := range ob.ends {
			if e < firstEnd {
				firstEnd = e
			}
		}
		p.checkReturnsBetween(ob, firstEnd)
	}
}

// classifyUse decides what one appearance of a span variable means for
// its obligation. path[len(path)-1] is the identifier itself.
func (p *Pass) classifyUse(ob *spanObligation, id *ast.Ident, path []ast.Node) {
	parent := path[len(path)-2]
	switch parent := parent.(type) {
	case *ast.SelectorExpr:
		// Only a method *call* matters; grandparent must invoke it.
		if len(path) >= 3 {
			if call, ok := path[len(path)-3].(*ast.CallExpr); ok && call.Fun == parent {
				if parent.Sel.Name == "End" || parent.Sel.Name == "EndExplicit" {
					if underDefer(path) {
						ob.deferred = true
					} else {
						ob.ends = append(ob.ends, call.Pos())
					}
				}
				return // other methods (StartChild, SetAttrs, ...) are neutral
			}
		}
	case *ast.CallExpr:
		for _, arg := range parent.Args {
			if arg == ast.Expr(id) {
				ob.escaped = true // callee inherits the obligation
				return
			}
		}
	case *ast.ReturnStmt:
		ob.escaped = true
	case *ast.AssignStmt:
		for _, r := range parent.Rhs {
			if ast.Unparen(r) == ast.Expr(id) {
				ob.escaped = true // aliased or stored; new holder owns it
				return
			}
		}
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.ValueSpec:
		ob.escaped = true
	}
}

// underDefer reports whether the ancestor path passes through a defer
// statement — either `defer sp.End()` or an End inside a deferred
// function literal.
func underDefer(path []ast.Node) bool {
	for _, n := range path {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// checkReturnsBetween flags return statements of the span's own
// function that occur lexically after the start and before the first
// non-deferred End: those paths leave the span dangling.
func (p *Pass) checkReturnsBetween(ob *spanObligation, firstEnd token.Pos) {
	var body *ast.BlockStmt
	switch fn := ob.fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && ob.fn != ast.Node(fl) {
			return false // returns in nested literals don't exit ob.fn
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > ob.startPos && ret.Pos() < firstEnd {
			p.Reportf(ret.Pos(),
				"return leaves span %s unended (started at line %d, first End at line %d); end it before returning or defer the End",
				ob.name, p.Pkg.Fset.Position(ob.startPos).Line, p.Pkg.Fset.Position(firstEnd).Line)
		}
		return true
	})
}

func startName(info *types.Info, call *ast.CallExpr) string {
	if f := CalleeOf(info, call); f != nil {
		return f.Name()
	}
	return "Start*"
}
