package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// lockstate.go is the lock-state abstract interpreter: a whole-module
// fixpoint that propagates the set of table/view locks held (acquired
// through txn.LockManager's WithWrite/WithRead and their *Span
// variants) along call paths. Two facts fall out of the fixpoint:
//
//   - may-hold: the union of lock sets a function may run under,
//     across every call path that reaches it (used by lock-order to
//     build the global acquisition-order graph);
//   - all-locked: whether every known call site of a function holds at
//     least one lock (used by locked-contract to prove that a *Locked
//     helper is only reachable from under a lock, replacing the old
//     lexical suffix heuristic of lock-discipline).
//
// Locks are abstracted as tokens: a constant table name becomes the
// quoted string ("mv_a"), a dynamic element its source expression
// (v.mvName). Matching by expression text under-approximates runtime
// aliasing, which is the conservative direction for deadlock edges
// (identical text on one call path is the same lock).
//
// Function literals: a literal passed to WithWrite/WithRead runs under
// the acquired locks; an immediately invoked or deferred literal runs
// in the enclosing context (defers inside a critical section fire
// before the locks release); a literal launched with go or escaping as
// a value runs with no provable locks.

// lockTok is one abstract lock: display is the token identity.
type lockTok struct {
	display string // `"table"` for constants, expression text otherwise
	sym     bool   // true when display is an expression, not a constant
	write   bool
}

// orderEdge records "while holding from, to was acquired" at pos.
type orderEdge struct {
	from, to string
	fromSym  bool
	toSym    bool
	pkg      *Package
	pos      token.Pos
}

// lockFinding is an interprocedural finding tagged with its package so
// per-package passes can claim it.
type lockFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// lockResult is the output of the lock-state fixpoint.
type lockResult struct {
	edges    []orderEdge
	self     []lockFinding // re-acquisition of a held lock
	contract []lockFinding // *Locked called where no lock is provable
	spawn    []lockFinding // goroutine-context violations at spawn sites
}

// lockAnalysis runs the fixpoint once per Unit and caches the result.
func (u *Unit) lockAnalysis() *lockResult {
	u.lockOnce.Do(func() {
		u.ensureDecls()
		w := &lockWalker{
			u:         u,
			cfg:       u.Cfg,
			entryMay:  map[*types.Func]map[string]lockTok{},
			allLocked: map[*types.Func]bool{},
		}
		// Iterate until the entry may-sets and the all-locked facts are
		// stable. Both grow monotonically (may-sets by union, all-locked
		// from false upward once every recorded site is locked), so the
		// loop terminates; the bound is a safety net.
		for iter := 0; iter < 2*len(u.declList)+2; iter++ {
			w.changed = false
			w.hasSite = map[*types.Func]bool{}
			w.unlockedSite = map[*types.Func]bool{}
			for _, di := range u.declList {
				w.walkDecl(di)
			}
			for _, di := range u.declList {
				now := w.hasSite[di.fn] && !w.unlockedSite[di.fn]
				if now != w.allLocked[di.fn] {
					w.allLocked[di.fn] = now
					w.changed = true
				}
			}
			if !w.changed {
				break
			}
		}
		// Final reporting pass over the stable state.
		w.final = true
		w.res = &lockResult{}
		w.seen = map[string]bool{}
		w.hasSite = map[*types.Func]bool{}
		w.unlockedSite = map[*types.Func]bool{}
		for _, di := range u.declList {
			w.walkDecl(di)
		}
		u.lock = w.res
	})
	return u.lock
}

// lockWalker carries the fixpoint state across iterations.
type lockWalker struct {
	u   *Unit
	cfg Config

	entryMay  map[*types.Func]map[string]lockTok
	allLocked map[*types.Func]bool

	hasSite      map[*types.Func]bool
	unlockedSite map[*types.Func]bool
	changed      bool

	final bool
	res   *lockResult
	seen  map[string]bool // dedup for edges and findings

	// per-declaration state
	curPkg   *Package
	curDecl  *declInfo
	litBound map[*ast.FuncLit]bool // literals walked from a lock-acquire site
}

// isCoreLocked reports whether fn carries the *Locked contract of the
// core package.
func (w *lockWalker) isCoreLocked(fn *types.Func) bool {
	return isLockedContractFn(fn, w.cfg.CorePkg)
}

// walkDecl analyzes one function declaration under its entry facts.
// Inside a *Locked function the contract itself grants the locks (the
// caller-side check enforces that the grant is justified); otherwise
// the body is locked only if every known call site was.
func (w *lockWalker) walkDecl(di *declInfo) {
	w.curPkg = di.pkg
	w.curDecl = di
	w.litBound = map[*ast.FuncLit]bool{}
	w.markBoundLits(di)
	held := map[string]lockTok{}
	for k, v := range w.entryMay[di.fn] {
		held[k] = v
	}
	locked := w.isCoreLocked(di.fn) || w.allLocked[di.fn]
	w.walk(di.decl.Body, held, locked)
}

// markBoundLits finds function literals bound to local variables that
// are only ever used as the closure argument of a lock acquisition;
// those are walked from the acquire site (under the lock) instead of
// at their definition.
func (w *lockWalker) markBoundLits(di *declInfo) {
	info := di.pkg.Info
	binds := map[types.Object]*ast.FuncLit{}
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			binds[obj] = lit
		}
		return true
	})
	if len(binds) == 0 {
		return
	}
	// A bound literal stays bound only if all its other uses are the
	// closure argument of a lock acquisition.
	uses := map[types.Object]int{}
	lockArg := map[types.Object]int{}
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isLockAcquire(CalleeOf(info, call), w.cfg.TxnPkg) && len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && binds[obj] != nil {
					lockArg[obj]++
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && binds[obj] != nil {
				uses[obj]++
			}
		}
		return true
	})
	for obj, lit := range binds {
		if lockArg[obj] > 0 && uses[obj] == lockArg[obj] {
			w.litBound[lit] = true
		}
	}
}

// walk interprets one body region under the given held set and
// locked-context flag.
func (w *lockWalker) walk(n ast.Node, held map[string]lockTok, locked bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			if ast.Node(m) == n {
				return true
			}
			if w.litBound[m] {
				return false // walked from its lock-acquire site
			}
			// Escaping literal: may run at any time, no provable locks.
			w.walk(m.Body, map[string]lockTok{}, false)
			return false
		case *ast.GoStmt:
			// Arguments evaluate at the go statement (enclosing
			// context); the body runs later with no provable locks. The
			// spawn-aware transfer function: drop every held fact, and
			// (in the final pass) flag spawned work that depended on
			// them — goroutine-context findings.
			for _, arg := range m.Call.Args {
				w.walk(arg, held, locked)
			}
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
				w.spawnCheckLit(m.Pos(), lit, held, "goroutine spawned here")
				w.walk(lit.Body, map[string]lockTok{}, false)
				return false
			}
			if f := CalleeOf(w.curPkg.Info, m.Call); f != nil {
				w.recordSite(f, map[string]lockTok{}, false)
				w.spawnCheckFunc(m.Pos(), f, held, "goroutine spawned here")
				return false
			}
			if id, ok := ast.Unparen(m.Call.Fun).(*ast.Ident); ok {
				if lit := w.litFor(id); lit != nil {
					w.spawnCheckLit(m.Pos(), lit, held, "goroutine spawned here")
				}
			}
			return false
		case *ast.DeferStmt:
			// Defers inside a critical section run before the locks
			// release, so they keep the enclosing context.
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
				for _, arg := range m.Call.Args {
					w.walk(arg, held, locked)
				}
				w.walk(lit.Body, held, locked)
				return false
			}
			w.call(m.Call, held, locked)
			return false
		case *ast.CallExpr:
			return w.call(m, held, locked)
		}
		return true
	})
}

// call handles one call expression; the return value tells ast.Inspect
// whether to keep descending (false when the walker already recursed
// into the arguments itself).
func (w *lockWalker) call(call *ast.CallExpr, held map[string]lockTok, locked bool) bool {
	info := w.curPkg.Info
	f := CalleeOf(info, call)
	if isLockAcquire(f, w.cfg.TxnPkg) {
		w.acquire(call, held, locked)
		return false
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked literal: runs here, same context.
		for _, arg := range call.Args {
			w.walk(arg, held, locked)
		}
		w.walk(lit.Body, held, locked)
		return false
	}
	if f != nil {
		if di := w.u.declOf(f); di != nil {
			w.recordSite(f, held, locked)
			if w.final && w.isCoreLocked(f) && !locked {
				w.report(&w.res.contract, call.Pos(),
					"%s requires the caller to hold the table locks (Locked contract) but no lock is provably held at this call",
					f.Name())
			}
		}
		// A function value handed to a spawning parameter (callgraph.go)
		// runs in a goroutine the callee launches: same transfer
		// function as a go statement — no lock facts cross over.
		for _, arg := range w.u.spawningArgs(f, call) {
			desc := fmt.Sprintf("function value handed to %s (which launches it in a goroutine)", f.Name())
			switch a := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				w.spawnCheckLit(arg.Pos(), a, held, desc)
			case *ast.Ident:
				if tf, ok := info.Uses[a].(*types.Func); ok {
					w.recordSite(tf, map[string]lockTok{}, false)
					w.spawnCheckFunc(arg.Pos(), tf, held, desc)
				} else if lit := w.litFor(a); lit != nil {
					w.spawnCheckLit(arg.Pos(), lit, held, desc)
				}
			case *ast.SelectorExpr:
				if tf, ok := info.Uses[a.Sel].(*types.Func); ok {
					w.recordSite(tf, map[string]lockTok{}, false)
					w.spawnCheckFunc(arg.Pos(), tf, held, desc)
				}
			}
		}
		return true
	}
	for _, di := range w.u.dynamicTargets(w.curPkg, call) {
		w.recordSite(di.fn, held, locked)
	}
	return true
}

// acquire models WithWrite/WithRead/WithWriteSpan/WithReadSpan: emits
// order edges and re-acquisition findings, then walks the closure
// argument under the extended lock set.
func (w *lockWalker) acquire(call *ast.CallExpr, held map[string]lockTok, locked bool) {
	if len(call.Args) == 0 {
		return
	}
	f := CalleeOf(w.curPkg.Info, call)
	write := strings.HasPrefix(f.Name(), "WithWrite")
	acq := w.tokensFromArg(call.Args[0], write)
	if w.final {
		for _, a := range acq {
			if h, ok := held[a.display]; ok {
				w.report(&w.res.self, call.Pos(),
					"acquires lock %s while a call path already holds it (%s-locked): LockManager mutexes are not reentrant, this self-deadlocks",
					a.display, modeName(h.write))
				continue
			}
			for _, h := range held {
				key := "edge|" + h.display + "|" + a.display + "|" + w.curPkg.Fset.Position(call.Pos()).String()
				if w.seen[key] {
					continue
				}
				w.seen[key] = true
				w.res.edges = append(w.res.edges, orderEdge{
					from: h.display, fromSym: h.sym,
					to: a.display, toSym: a.sym,
					pkg: w.curPkg, pos: call.Pos(),
				})
			}
		}
	}
	extended := map[string]lockTok{}
	for k, v := range held {
		extended[k] = v
	}
	for _, a := range acq {
		extended[a.display] = a
	}
	// Non-closure arguments (the table list, a parent span) evaluate in
	// the pre-acquire context.
	for _, arg := range call.Args[:len(call.Args)-1] {
		w.walk(arg, held, locked)
	}
	last := ast.Unparen(call.Args[len(call.Args)-1])
	switch fn := last.(type) {
	case *ast.FuncLit:
		w.walk(fn.Body, extended, true)
	case *ast.Ident:
		if tf, ok := w.curPkg.Info.Uses[fn].(*types.Func); ok {
			w.recordSite(tf, extended, true)
			return
		}
		// A local variable holding a literal: walk the literal under
		// the lock (markBoundLits decided whether the definition-site
		// walk is also needed).
		if lit := w.litFor(fn); lit != nil {
			w.walk(lit.Body, extended, true)
		}
	case *ast.SelectorExpr:
		if tf, ok := w.curPkg.Info.Uses[fn.Sel].(*types.Func); ok {
			w.recordSite(tf, extended, true)
		}
	}
}

// spawnCheckLit reports (final pass only) the goroutine-context
// violations of a function literal that is spawned — directly with go,
// or via a spawning parameter — while held locks are in force. Table
// bindings resolve against the whole enclosing declaration so captured
// table variables keep their identity inside the literal.
func (w *lockWalker) spawnCheckLit(pos token.Pos, lit *ast.FuncLit, held map[string]lockTok, desc string) {
	if !w.final || w.curDecl == nil {
		return
	}
	w.reportSpawn(pos, w.u.factsForLit(w.curPkg.Info, w.curDecl.decl.Body, lit), held, desc)
}

// spawnCheckFunc is spawnCheckLit for a named function or method value.
func (w *lockWalker) spawnCheckFunc(pos token.Pos, fn *types.Func, held map[string]lockTok, desc string) {
	if !w.final {
		return
	}
	if w.u.declOf(fn) == nil && !w.isCoreLocked(fn) {
		return
	}
	w.reportSpawn(pos, w.u.factsForFunc(fn), held, desc)
}

// reportSpawn renders spawn facts into goroutine-context findings: a
// reachable *Locked helper is always a violation (the goroutine holds
// nothing), and a lock-free touch of a table whose lock the spawning
// context holds is the "inherited lock fact" race.
func (w *lockWalker) reportSpawn(pos token.Pos, facts spawnFacts, held map[string]lockTok, desc string) {
	if facts.reach != nil {
		w.report(&w.res.spawn, pos,
			"%s calls %s, which requires locks its caller holds (Locked contract); lock facts do not transfer into a spawned goroutine — re-acquire inside it",
			desc, facts.reach.Name())
	}
	var keys []string
	for k := range facts.touch {
		if _, ok := held[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.report(&w.res.spawn, pos,
			"%s touches table %s while the spawning context holds its %s lock; spawned goroutines do not inherit locks — re-acquire inside the goroutine",
			desc, k, modeName(held[k].write))
	}
}

// litFor resolves a local identifier to the single function literal
// assigned to it, if any.
func (w *lockWalker) litFor(id *ast.Ident) *ast.FuncLit {
	obj := w.curPkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	// litBound only marks exclusively-bound literals; re-scan the
	// declaration for the binding regardless of exclusivity.
	var found *ast.FuncLit
	ast.Inspect(declBodyOf(obj, w.u), func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lid, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		def := w.curPkg.Info.Defs[lid]
		if def == nil {
			def = w.curPkg.Info.Uses[lid]
		}
		if def == obj {
			if lit, ok := as.Rhs[0].(*ast.FuncLit); ok {
				found = lit
			}
		}
		return true
	})
	return found
}

// declBodyOf finds the enclosing declared-function body of a local
// object, falling back to an empty block.
func declBodyOf(obj types.Object, u *Unit) ast.Node {
	for _, di := range u.declList {
		if di.decl.Body != nil && di.decl.Body.Pos() <= obj.Pos() && obj.Pos() <= di.decl.Body.End() {
			return di.decl.Body
		}
	}
	return &ast.BlockStmt{}
}

// recordSite registers one call site of fn: its lockedness feeds the
// all-locked fact, its held set feeds the may-hold entry set.
func (w *lockWalker) recordSite(fn *types.Func, held map[string]lockTok, locked bool) {
	if w.u.declOf(fn) == nil {
		return
	}
	w.hasSite[fn] = true
	if !locked {
		w.unlockedSite[fn] = true
	}
	entry := w.entryMay[fn]
	if entry == nil {
		entry = map[string]lockTok{}
		w.entryMay[fn] = entry
	}
	for k, v := range held {
		if _, ok := entry[k]; !ok {
			entry[k] = v
			w.changed = true
		}
	}
}

// tokensFromArg abstracts a lock-table argument into tokens.
func (w *lockWalker) tokensFromArg(e ast.Expr, write bool) []lockTok {
	e = ast.Unparen(e)
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return []lockTok{{display: types.ExprString(e), sym: true, write: write}}
	}
	var out []lockTok
	for _, elt := range lit.Elts {
		tv, ok := w.curPkg.Info.Types[elt]
		if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			out = append(out, lockTok{display: strconv.Quote(constant.StringVal(tv.Value)), write: write})
			continue
		}
		out = append(out, lockTok{display: types.ExprString(elt), sym: true, write: write})
	}
	return out
}

// report appends a deduplicated lockFinding.
func (w *lockWalker) report(dst *[]lockFinding, pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := "find|" + w.curPkg.Fset.Position(pos).String() + "|" + msg
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	*dst = append(*dst, lockFinding{pkg: w.curPkg, pos: pos, msg: msg})
}

func modeName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}
