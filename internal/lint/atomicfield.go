package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// analyzerAtomicDiscipline enforces the sync/atomic all-or-nothing
// rule: a struct field that is accessed through sync/atomic anywhere in
// the module must be accessed atomically everywhere. A single plain
// read can observe a torn or stale value, a plain write can be lost
// under a concurrent atomic RMW, and handing the field's address to
// non-atomic code gives up the discipline entirely. The facts are
// whole-module (computed once per Unit): field identity is the
// *types.Var, which the shared loader keeps identical across packages,
// so a field atomically written in one package and plainly read in
// another is still caught. Fields typed atomic.Int64/atomic.Value etc.
// are immune by construction (the obs counters pattern) — the type
// system already forbids plain access, and `go vet`'s copylocks covers
// copies.
var analyzerAtomicDiscipline = &Analyzer{
	Name: "atomic-discipline",
	Doc:  "fields accessed via sync/atomic are accessed atomically everywhere: no mixed plain reads, writes, or address escapes",
	Run:  runAtomicDiscipline,
}

// atomicFacts is the whole-module map from struct fields accessed via
// sync/atomic to one representative atomic-use site (for diagnostics).
type atomicFacts struct {
	site map[*types.Var]token.Position
}

// ensureAtomic computes atomicFacts once per Unit.
func (u *Unit) ensureAtomic() {
	u.atomicOnce.Do(func() {
		facts := &atomicFacts{site: map[*types.Var]token.Position{}}
		for _, pkg := range u.Pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						return true
					}
					if !isSyncAtomicCall(pkg.Info, call) {
						return true
					}
					v := addrOfField(pkg.Info, call.Args[0])
					if v == nil {
						return true
					}
					pos := pkg.Fset.Position(call.Pos())
					if prev, ok := facts.site[v]; !ok || before(pos, prev) {
						facts.site[v] = pos
					}
					return true
				})
			}
		}
		u.atomic = facts
	})
}

func before(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Line < b.Line
}

// isSyncAtomicCall reports whether call invokes a sync/atomic package
// function (Add*, Load*, Store*, Swap*, CompareAndSwap*, ...), all of
// which take the target address as their first argument.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	f := CalleeOf(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil // package functions, not atomic.Int64 methods
}

// addrOfField unwraps &x.f and returns the field variable, or nil.
func addrOfField(info *types.Info, e ast.Expr) *types.Var {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func runAtomicDiscipline(p *Pass) {
	p.Unit.ensureAtomic()
	facts := p.Unit.atomic
	if len(facts.site) == 0 {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		// Classify every mention of an atomic field in this file.
		sanctioned := map[ast.Node]bool{} // &x.f passed to sync/atomic, and the selector inside it
		writes := map[*ast.SelectorExpr]string{}
		escapes := map[*ast.SelectorExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isSyncAtomicCall(info, n) && len(n.Args) > 0 {
					if un, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
						sanctioned[un] = true
						if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
							sanctioned[sel] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && !sanctioned[n] {
					if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						if fieldVarOf(info, sel) != nil {
							escapes[sel] = true
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						writes[sel] = "written"
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					writes[sel] = "incremented"
				}
			}
			return true
		})
		type hit struct {
			pos token.Pos
			msg string
		}
		var hits []hit
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldVarOf(info, sel)
			if v == nil {
				return true
			}
			site, isAtomic := facts.site[v]
			if !isAtomic {
				return true
			}
			where := "plainly read"
			switch {
			case writes[sel] != "":
				where = "plainly " + writes[sel]
			case escapes[sel]:
				where = "address-escaped to non-atomic code"
			}
			hits = append(hits, hit{sel.Pos(), sprintfAtomic(v, where, site)})
			return true
		})
		sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
		for _, h := range hits {
			p.Reportf(h.pos, "%s", h.msg)
		}
	}
}

// fieldVarOf resolves sel to a struct field variable, or nil.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func sprintfAtomic(v *types.Var, where string, site token.Position) string {
	return fmt.Sprintf("field %s is accessed via sync/atomic (%s:%d) but %s here; mixed atomic/plain access races — every access must go through sync/atomic",
		v.Name(), filepath.Base(site.Filename), site.Line, where)
}
