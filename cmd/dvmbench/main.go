// Command dvmbench regenerates every experiment in DESIGN.md's
// per-experiment index (E1–E16) and prints the result tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	dvmbench                    # run all experiments
//	dvmbench -exp e4            # run one experiment (e16 is the compiled-
//	                            # vs-interpreted delta-program day)
//	dvmbench -list              # list experiment ids
//	dvmbench -json              # emit the reports (tables + obs phase timings) as JSON
//	dvmbench -trace out.json    # also run a traced Policy-1 retail day and
//	                            # write its Chrome trace-event file (Perfetto)
//	dvmbench -diff BENCH_X.json # fail (exit 1) if any guarded phase
//	                            # (view_downtime_ns max, txn_exec_ns p99)
//	                            # regressed >2x against the baseline
//	dvmbench -shards 4          # run the multi-shard retail day at 4 shards
//	                            # (compare against -shards 1; e15 is the sweep)
//	dvmbench -shards 4 -cpuprofile cpu.pprof -memprofile heap.pprof
//	                            # capture labeled profiles of the run; the CPU
//	                            # profile gets a dvm_view/dvm_shard/dvm_phase
//	                            # attribution summary on stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"dvm/internal/bench"
	"dvm/internal/obs"
	"dvm/internal/obs/profparse"
	"dvm/internal/obs/trace"
)

// diffFactor is the regression threshold -diff enforces: a downtime
// phase fails when its max exceeds this multiple of the baseline's.
const diffFactor = 2.0

func main() {
	os.Exit(run())
}

// run is main with an exit code instead of os.Exit, so the profiling
// defers (StopCPUProfile, heap write, attribution summary) flush even
// on failure paths.
func run() int {
	exp := flag.String("exp", "", "run a single experiment (e1..e16); empty runs all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit reports as JSON (for BENCH_*.json baselines)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event file of a traced Policy-1 retail day")
	diff := flag.String("diff", "", "compare downtime phases against this BENCH_*.json baseline; exit 1 on >2x regression")
	shards := flag.Int("shards", 0, "run the multi-shard retail day at this shard count (1 = plain serial manager)")
	cpuprofile := flag.String("cpuprofile", "", "write a labeled CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the profile never started; the start error is what matters
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			summarizeCPUProfile(*cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *shards > 0 {
		rep, err := bench.ShardDayReport(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode([]*bench.Report{rep}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else {
			fmt.Println(rep)
		}
		return 0
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *exp == "" && !*asJSON && *diff == "" && !*list {
			return 0
		}
	}

	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Println(e.ID)
		}
		return 0
	}

	var reports []*bench.Report
	for _, e := range exps {
		if *exp != "" && !strings.EqualFold(*exp, e.ID) {
			continue
		}
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			return 1
		}
		if *asJSON {
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Println(rep)
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment named %q; try -list\n", *exp)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *diff != "" {
		if err := diffAgainst(*diff, reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "benchdiff: no downtime regression vs %s\n", *diff)
	}
	return 0
}

// writeHeapProfile forces a GC (so the heap profile reflects live
// objects, not garbage) and writes the allocs-to-date profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", path)
	return nil
}

// summarizeCPUProfile re-reads the just-written CPU profile and prints
// a dvm label attribution summary: how much of the sampled CPU time
// carries the dvm_phase label, and the per-phase split. This is the
// quick check that the pprof-label plumbing covered the maintenance
// regions — `go tool pprof -tags` gives the full drill-down.
func summarizeCPUProfile(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	p, err := profparse.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpuprofile summary: %v\n", err)
		return
	}
	// CPU profiles carry [samples/count, cpu/nanoseconds]; index 1 is
	// nanoseconds.
	st := p.Attribution(1, obs.LabelPhase, obs.LabelPhase)
	fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", path)
	if st.Total == 0 {
		fmt.Fprintln(os.Stderr, "cpuprofile summary: no samples captured (run too short?)")
		return
	}
	fmt.Fprintf(os.Stderr, "cpuprofile summary: %s sampled, %.1f%% labeled with %s\n",
		time.Duration(st.Total), 100*float64(st.Labeled)/float64(st.Total), obs.LabelPhase)
	phases := make([]string, 0, len(st.ByValue))
	for phase := range st.ByValue {
		if phase != "" {
			phases = append(phases, phase)
		}
	}
	sort.Slice(phases, func(i, j int) bool { return st.ByValue[phases[i]] > st.ByValue[phases[j]] })
	for _, phase := range phases {
		fmt.Fprintf(os.Stderr, "  %s=%s  %v\n", obs.LabelPhase, phase, time.Duration(st.ByValue[phase]))
	}
}

// writeTrace runs the traced Policy-1 retail day and writes its Chrome
// trace-event export to path, verifying the file through the in-repo
// parser first.
func writeTrace(path string) error {
	data, err := bench.TracedRetailRun(24, 40)
	if err != nil {
		return err
	}
	if _, err := trace.ParseChrome(data); err != nil {
		return fmt.Errorf("dvmbench: exported trace failed validation: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace-event file to %s (load in Perfetto or chrome://tracing)\n", path)
	return nil
}

// diffAgainst compares the fresh reports' guarded phases with a
// baseline file, returning an error listing every >2x regression.
// Suspected regressions get one reproduction run of the implicated
// experiment before failing the gate (bench.CompareWithRetry).
func diffAgainst(path string, fresh []*bench.Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	baseline, err := bench.ParseReports(data)
	if err != nil {
		return err
	}
	rerun := func(id string) (*bench.Report, error) {
		for _, e := range bench.All() {
			if strings.EqualFold(e.ID, id) {
				fmt.Fprintf(os.Stderr, "benchdiff: %s regressed, re-running to confirm\n", id)
				return e.Run()
			}
		}
		return nil, nil
	}
	if problems := bench.CompareWithRetry(baseline, fresh, diffFactor, rerun); len(problems) > 0 {
		return fmt.Errorf("benchdiff: downtime regression vs %s:\n  %s", path, strings.Join(problems, "\n  "))
	}
	return nil
}
