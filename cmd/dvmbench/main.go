// Command dvmbench regenerates every experiment in DESIGN.md's
// per-experiment index (E1–E9) and prints the result tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	dvmbench            # run all experiments
//	dvmbench -exp e4    # run one experiment
//	dvmbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dvm/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment (e1..e9); empty runs all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Println(e.ID)
		}
		return
	}

	ran := 0
	for _, e := range exps {
		if *exp != "" && !strings.EqualFold(*exp, e.ID) {
			continue
		}
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment named %q; try -list\n", *exp)
		os.Exit(1)
	}
}
