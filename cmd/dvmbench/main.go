// Command dvmbench regenerates every experiment in DESIGN.md's
// per-experiment index (E1–E9) and prints the result tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	dvmbench            # run all experiments
//	dvmbench -exp e4    # run one experiment
//	dvmbench -list      # list experiment ids
//	dvmbench -json      # emit the reports (tables + obs phase timings) as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dvm/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment (e1..e9); empty runs all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit reports as JSON (for BENCH_*.json baselines)")
	flag.Parse()

	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Println(e.ID)
		}
		return
	}

	var reports []*bench.Report
	for _, e := range exps {
		if *exp != "" && !strings.EqualFold(*exp, e.ID) {
			continue
		}
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *asJSON {
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Println(rep)
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment named %q; try -list\n", *exp)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
