package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"dvm/internal/obs"
	"dvm/internal/obs/trace"
	"dvm/internal/sql"
)

func statsdEngine(t *testing.T) *sql.Engine {
	t.Helper()
	engine := sql.NewEngine(sql.WithTraceSpec("all"))
	if err := engine.Err(); err != nil {
		t.Fatal(err)
	}
	script := `
CREATE TABLE sales (id INT, amount INT);
CREATE MATERIALIZED VIEW big REFRESH DEFERRED COMBINED AS
  SELECT id, amount FROM sales WHERE amount > 100;
INSERT INTO sales VALUES (1, 500);
PROPAGATE big;
REFRESH big;
`
	if _, err := engine.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return engine
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthzAndRoutes(t *testing.T) {
	srv := httptest.NewServer(newMux(statsdEngine(t)))
	defer srv.Close()

	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}

	code, body = get(t, srv.URL+"/stats")
	if code != http.StatusOK {
		t.Errorf("/stats = %d", code)
	}
	var snap struct {
		Metrics []struct{ Name string } `json:"metrics"`
	}
	if err := json.Unmarshal(body, &snap); err != nil || len(snap.Metrics) == 0 {
		t.Errorf("/stats body not a metrics snapshot (%v):\n%s", err, body)
	}

	code, body = get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	var summaries []trace.Summary
	if err := json.Unmarshal(body, &summaries); err != nil {
		t.Fatalf("/trace body: %v\n%s", err, body)
	}
	if len(summaries) == 0 {
		t.Fatal("/trace returned no captured traces")
	}

	// Single-trace fetch, JSON and text.
	id := summaries[0].ID
	code, body = get(t, fmt.Sprintf("%s/trace?id=%d", srv.URL, id))
	if code != http.StatusOK {
		t.Errorf("/trace?id=%d = %d", id, code)
	}
	var tr trace.Trace
	if err := json.Unmarshal(body, &tr); err != nil || tr.ID != id || tr.Root == nil {
		t.Errorf("/trace?id=%d body mangled (%v):\n%s", id, err, body)
	}
	code, body = get(t, fmt.Sprintf("%s/trace?id=%d&format=text", srv.URL, id))
	if code != http.StatusOK || len(body) == 0 || body[0] != '#' {
		t.Errorf("/trace?id&format=text = %d %q", code, body)
	}

	if code, _ := get(t, srv.URL+"/trace?id=999999"); code != http.StatusNotFound {
		t.Errorf("/trace?id=999999 = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/trace?id=bogus"); code != http.StatusBadRequest {
		t.Errorf("/trace?id=bogus = %d, want 400", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	engine := statsdEngine(t)
	engine.Manager().StartRuntimeBridge(time.Hour) // synchronous first poll
	defer func() {
		if err := engine.Close(); err != nil {
			t.Error(err)
		}
	}()
	srv := httptest.NewServer(newMux(engine))
	defer srv.Close()

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics failed the exposition validator: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE dvm_view_downtime_ns histogram",
		`dvm_propagate_ns_count{view="big"} `,
		"# TYPE dvm_go_goroutines gauge",
		`dvm_phase_cpu_ns{view="big",phase="propagate"} `,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The ?filter= prefix narrows the exposition like /stats.
	code, filtered := get(t, srv.URL+"/metrics?filter=go_")
	if code != http.StatusOK {
		t.Fatalf("/metrics?filter=go_ = %d", code)
	}
	if strings.Contains(string(filtered), "dvm_view_downtime_ns") {
		t.Error("?filter=go_ still exposes view_downtime")
	}
	if !strings.Contains(string(filtered), "dvm_go_goroutines") {
		t.Error("?filter=go_ dropped the go_ families")
	}

	// /stats must set a Content-Type and honour ?filter= too.
	resp, err := http.Get(srv.URL + "/stats?filter=propagate_")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("/stats Content-Type = %q", ct)
	}
	var snap struct {
		Metrics []struct{ Name string } `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, m := range snap.Metrics {
		if !strings.HasPrefix(m.Name, "propagate_") {
			t.Errorf("/stats?filter=propagate_ leaked family %s", m.Name)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := httptest.NewServer(newMux(statsdEngine(t)))
	defer srv.Close()
	code, body := get(t, srv.URL+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine profile") {
		t.Fatalf("/debug/pprof/goroutine = %d %.60q", code, body)
	}
}

// TestShutdownStopsBridge is the leak check for the graceful-shutdown
// path: starting the bridge and closing the engine (what main does
// after serveUntilSignal returns) must return the goroutine count to
// its baseline.
func TestShutdownStopsBridge(t *testing.T) {
	before := runtime.NumGoroutine()
	engine := statsdEngine(t)
	engine.Manager().StartRuntimeBridge(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	if err := engine.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak after Close: %d, baseline %d", n, before)
	}
}

func TestWriteMetricsSnapshot(t *testing.T) {
	engine := statsdEngine(t)
	path := t.TempDir() + "/metrics.prom"
	if err := writeMetricsSnapshot(engine, path); err != nil {
		t.Fatalf("writeMetricsSnapshot: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(data); err != nil {
		t.Fatalf("snapshot file invalid: %v", err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newMux(statsdEngine(t))}
	sigc := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(srv, ln, sigc, shutdownTimeout) }()

	// The server must be live before we signal it.
	url := "http://" + ln.Addr().String() + "/healthz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	sigc <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilSignal did not return after SIGTERM")
	}

	// The listener must actually be closed.
	if resp, err := http.Get(url); err == nil {
		resp.Body.Close()
		t.Fatal("server still serving after shutdown")
	}
}
