// Command dvmstatsd serves a dvm engine's metrics over HTTP — the
// expvar-style endpoint of the observability layer (docs/observability.md).
//
// It builds an engine (fresh, from a -load snapshot, or by executing a
// -f SQL script), then serves the engine's metrics registry on -addr:
//
//	GET /stats             JSON snapshot of every metric
//	GET /stats?format=text the aligned table dvmsh \stats prints
//
// With -demo it additionally runs a small retail-style workload in a
// loop (one writer goroutine; the HTTP side only reads atomics), so the
// histograms keep moving while you watch:
//
//	dvmstatsd -demo &
//	curl 'localhost:7171/stats?format=text'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"dvm/internal/obs"
	"dvm/internal/sql"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7171", "listen address for the stats endpoint")
	file := flag.String("f", "", "execute this SQL script before serving")
	load := flag.String("load", "", "restore an engine snapshot before serving")
	demo := flag.Bool("demo", false, "run a looping retail-style workload so metrics keep moving")
	flag.Parse()

	engine := sql.NewEngine()
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		engine, err = sql.LoadEngine(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("load: %w", err))
		}
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		if _, err := engine.ExecScript(string(data)); err != nil {
			fatal(fmt.Errorf("script: %w", err))
		}
	}
	if *demo {
		if err := startDemo(engine); err != nil {
			fatal(fmt.Errorf("demo: %w", err))
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/stats", obs.Handler(engine.Manager().Obs()))
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "dvmstatsd — GET /stats (JSON) or /stats?format=text")
	})
	fmt.Printf("dvmstatsd serving http://%s/stats\n", *addr)
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	fatal(srv.ListenAndServe())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// startDemo sets up a COMBINED retail view and keeps a single writer
// goroutine inserting sales, propagating, and refreshing on Policy 1
// (propagate every batch, refresh every 8th), with interleaved reads.
func startDemo(engine *sql.Engine) error {
	setup := `
CREATE TABLE sales (id INT, region STRING, amount INT);
CREATE MATERIALIZED VIEW big_sales REFRESH DEFERRED COMBINED AS
  SELECT id, region, amount FROM sales WHERE amount > 500;
`
	if _, err := engine.ExecScript(setup); err != nil {
		return err
	}
	go func() {
		for i := 0; ; i++ {
			stmt := fmt.Sprintf(
				"INSERT INTO sales VALUES (%d, 'r%d', %d);PROPAGATE big_sales;SELECT region FROM big_sales;",
				i, i%4, (i*137)%1000)
			if i%8 == 7 {
				stmt += "REFRESH big_sales;"
			}
			if _, err := engine.ExecScript(stmt); err != nil {
				fmt.Fprintln(os.Stderr, "demo:", err)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	return nil
}
