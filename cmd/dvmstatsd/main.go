// Command dvmstatsd serves a dvm engine's metrics and traces over
// HTTP — the live half of the observability layer
// (docs/observability.md).
//
// It builds an engine (fresh, from a -load snapshot, or by executing a
// -f SQL script), then serves the engine's registry and tracer on
// -addr:
//
//	GET /stats             JSON snapshot of every metric (?filter=PREFIX)
//	GET /stats?format=text the aligned table dvmsh \stats prints
//	GET /metrics           Prometheus text exposition of the registry
//	GET /trace             JSON list of captured trace summaries
//	GET /trace?id=42       one full span tree (add &format=text to render)
//	GET /debug/pprof/      net/http/pprof profiles; CPU samples carry the
//	                       dvm_view/dvm_shard/dvm_phase labels
//	GET /healthz           200 ok (liveness probe)
//
// The runtime/metrics bridge (go_* families) polls every -bridge
// interval; it is stopped — along with any other background poller —
// by the graceful SIGINT/SIGTERM shutdown (in-flight requests get up
// to 5s to finish).
//
// With -demo it additionally runs a small retail-style workload in a
// loop (one writer goroutine; the HTTP side only reads atomics), so the
// histograms and the trace ring keep moving while you watch:
//
//	dvmstatsd -demo &
//	curl 'localhost:7171/metrics'
//	curl 'localhost:7171/trace?n=3'
//
// Two non-serving modes support tooling: -bridge-families prints the
// runtime bridge's family list (scripts/check.sh echoes the gauge
// count), and -once FILE writes one validated /metrics exposition
// snapshot to FILE and exits (CI uploads it as a failure artifact).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvm/internal/obs"
	"dvm/internal/obs/runtimebridge"
	"dvm/internal/obs/trace"
	"dvm/internal/sql"
)

// shutdownTimeout bounds how long graceful shutdown waits for
// in-flight requests.
const shutdownTimeout = 5 * time.Second

func main() {
	addr := flag.String("addr", "127.0.0.1:7171", "listen address for the stats endpoint")
	file := flag.String("f", "", "execute this SQL script before serving")
	load := flag.String("load", "", "restore an engine snapshot before serving")
	demo := flag.Bool("demo", false, "run a looping retail-style workload so metrics keep moving")
	traceSpec := flag.String("trace", "all", "trace sampling: off|all|rate=N|threshold=DUR (served on /trace)")
	bridge := flag.Duration("bridge", time.Second, "runtime/metrics bridge poll interval (0 disables the bridge)")
	bridgeFams := flag.Bool("bridge-families", false, "print the runtime bridge's metric families (name kind) and exit")
	once := flag.String("once", "", "write one /metrics exposition snapshot to this file and exit")
	flag.Parse()

	if *bridgeFams {
		for _, fi := range runtimebridge.Families() {
			fmt.Printf("%s %s\n", fi.Name, fi.Kind)
		}
		return
	}

	engine := sql.NewEngine(sql.WithTraceSpec(*traceSpec))
	if err := engine.Err(); err != nil {
		fatal(err)
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		engine, err = sql.LoadEngine(f, sql.WithTraceSpec(*traceSpec))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("load: %w", err))
		}
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		if _, err := engine.ExecScript(string(data)); err != nil {
			fatal(fmt.Errorf("script: %w", err))
		}
	}
	if *bridge > 0 {
		engine.Manager().StartRuntimeBridge(*bridge)
	}

	if *once != "" {
		if err := writeMetricsSnapshot(engine, *once); err != nil {
			fatal(err)
		}
		if err := engine.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("dvmstatsd: wrote metrics snapshot to %s\n", *once)
		return
	}

	if *demo {
		if err := startDemo(engine); err != nil {
			fatal(fmt.Errorf("demo: %w", err))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dvmstatsd serving http://%s/stats\n", ln.Addr())
	srv := &http.Server{Handler: newMux(engine), ReadHeaderTimeout: 5 * time.Second}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if err := serveUntilSignal(srv, ln, sigc, shutdownTimeout); err != nil {
		fatal(err)
	}
	// The HTTP side is drained; now stop the background pollers so the
	// process exits without leaking the bridge goroutine.
	if err := engine.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("dvmstatsd: shut down cleanly")
}

// newMux builds the daemon's routes over the engine's registry and
// tracer.
func newMux(engine *sql.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/stats", obs.Handler(engine.Manager().Obs()))
	mux.Handle("/metrics", obs.PromHandler(engine.Manager().Obs()))
	mux.Handle("/trace", trace.Handler(engine.Manager().Tracer()))
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "dvmstatsd — GET /stats (JSON), /stats?format=text, /metrics, /trace, /debug/pprof/, /healthz")
	})
	return mux
}

// writeMetricsSnapshot renders the engine's registry in exposition
// format, runs the strict validator over it, and writes it to path —
// the -once mode CI uses to attach a /metrics artifact to failures.
func writeMetricsSnapshot(engine *sql.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := engine.Manager().Obs().Snapshot()
	werr := obs.WriteProm(f, snap)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := obs.ValidateExposition(data); err != nil {
		return fmt.Errorf("snapshot failed exposition validation: %w", err)
	}
	return nil
}

// serveUntilSignal serves on ln until the server fails or a signal
// arrives on sigc, then shuts down gracefully: no new connections,
// in-flight requests get up to timeout to complete.
func serveUntilSignal(srv *http.Server, ln net.Listener, sigc <-chan os.Signal, timeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// startDemo sets up a COMBINED retail view and keeps a single writer
// goroutine inserting sales, propagating, and refreshing on Policy 1
// (propagate every batch, refresh every 8th), with interleaved reads.
func startDemo(engine *sql.Engine) error {
	setup := `
CREATE TABLE sales (id INT, region STRING, amount INT);
CREATE MATERIALIZED VIEW big_sales REFRESH DEFERRED COMBINED AS
  SELECT id, region, amount FROM sales WHERE amount > 500;
`
	if _, err := engine.ExecScript(setup); err != nil {
		return err
	}
	go func() {
		for i := 0; ; i++ {
			stmt := fmt.Sprintf(
				"INSERT INTO sales VALUES (%d, 'r%d', %d);PROPAGATE big_sales;SELECT region FROM big_sales;",
				i, i%4, (i*137)%1000)
			if i%8 == 7 {
				stmt += "REFRESH big_sales;"
			}
			if _, err := engine.ExecScript(stmt); err != nil {
				fmt.Fprintln(os.Stderr, "demo:", err)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	return nil
}
