package main

import (
	"strings"
	"testing"

	"dvm/internal/sql"
)

// testEngine builds a traced engine with one Combined view and a bit
// of maintenance history.
func testEngine(t *testing.T) *sql.Engine {
	t.Helper()
	engine := sql.NewEngine(sql.WithTraceSpec("all"))
	if err := engine.Err(); err != nil {
		t.Fatal(err)
	}
	script := `
CREATE TABLE sales (id INT, amount INT);
CREATE MATERIALIZED VIEW big REFRESH DEFERRED COMBINED AS
  SELECT id, amount FROM sales WHERE amount > 100;
INSERT INTO sales VALUES (1, 500);
INSERT INTO sales VALUES (2, 50);
PROPAGATE big;
REFRESH big;
`
	if _, err := engine.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return engine
}

func TestStatsPrefixFilter(t *testing.T) {
	engine := testEngine(t)
	var buf strings.Builder
	newShell(engine).metaCommand(&buf, "\\stats lock_")
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("\\stats lock_ printed no metric rows:\n%s", out)
	}
	// Every data row (after header + rule) must be from a lock_ family.
	for _, line := range lines[2:] {
		if !strings.HasPrefix(line, "lock_") {
			t.Errorf("unfiltered row %q in:\n%s", line, out)
		}
	}
	if strings.Contains(out, "view_downtime_ns") {
		t.Errorf("\\stats lock_ leaked other families:\n%s", out)
	}

	// Unfiltered output must contain families the filter removed.
	buf.Reset()
	newShell(engine).metaCommand(&buf, "\\stats")
	if !strings.Contains(buf.String(), "view_downtime_ns") {
		t.Errorf("unfiltered \\stats missing view_downtime_ns:\n%s", buf.String())
	}

	// A prefix matching nothing yields just the header.
	buf.Reset()
	newShell(engine).metaCommand(&buf, "\\stats no_such_family")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("\\stats no_such_family printed %d lines, want 2 (header+rule):\n%s", got, buf.String())
	}
}

func TestStatsRate(t *testing.T) {
	engine := sql.NewEngine()
	if err := engine.Err(); err != nil {
		t.Fatal(err)
	}
	sh := newShell(engine) // baseline: empty registry
	script := `
CREATE TABLE sales (id INT, amount INT);
CREATE MATERIALIZED VIEW big REFRESH DEFERRED COMBINED AS
  SELECT id, amount FROM sales WHERE amount > 100;
INSERT INTO sales VALUES (1, 500);
PROPAGATE big;
REFRESH big;
`
	if _, err := engine.ExecScript(script); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	sh.metaCommand(&buf, "\\stats rate")
	out := buf.String()
	if !strings.HasPrefix(out, "rate over the last ") {
		t.Errorf("\\stats rate missing window header:\n%s", out)
	}
	for _, want := range []string{"propagate_ns", "refresh_ns", "/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("\\stats rate missing %q:\n%s", want, out)
		}
	}

	// The baseline advanced: with no new work, nothing changed.
	buf.Reset()
	sh.metaCommand(&buf, "\\stats rate")
	if !strings.Contains(buf.String(), "no metric changed") {
		t.Errorf("idle second window should report no change:\n%s", buf.String())
	}

	// The prefix argument filters the rate view like plain \stats.
	if _, err := engine.ExecScript("INSERT INTO sales VALUES (2, 700);PROPAGATE big;"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	sh.metaCommand(&buf, "\\stats rate propagate_")
	out = buf.String()
	if !strings.Contains(out, "propagate_ns") {
		t.Errorf("filtered rate view missing propagate_ns:\n%s", out)
	}
	if strings.Contains(out, "txn_exec_ns") {
		t.Errorf("\\stats rate propagate_ leaked other families:\n%s", out)
	}
}

func TestTraceCommand(t *testing.T) {
	engine := testEngine(t)
	var buf strings.Builder
	newShell(engine).metaCommand(&buf, "\\trace 3")
	out := buf.String()
	if !strings.Contains(out, "sql.stmt") {
		t.Errorf("\\trace output missing sql.stmt spans:\n%s", out)
	}
	if !strings.Contains(out, "core.refresh.apply") {
		t.Errorf("\\trace output missing the refresh apply span:\n%s", out)
	}
	if !strings.Contains(out, "(exclusive)") {
		t.Errorf("\\trace output missing the exclusive marker:\n%s", out)
	}
	// Count trace headers: exactly 3 were requested.
	if got := strings.Count(out, "\n#")+boolToInt(strings.HasPrefix(out, "#")); got != 3 {
		t.Errorf("\\trace 3 rendered %d traces, want 3:\n%s", got, out)
	}

	// Bad argument prints usage, not a panic.
	buf.Reset()
	newShell(engine).metaCommand(&buf, "\\trace zero")
	if !strings.Contains(buf.String(), "usage") {
		t.Errorf("\\trace zero: got %q, want usage message", buf.String())
	}
}

func TestTraceCommandDisabledTracer(t *testing.T) {
	engine := sql.NewEngine(sql.WithTraceSpec("off"))
	if err := engine.Err(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	newShell(engine).metaCommand(&buf, "\\trace")
	if !strings.Contains(buf.String(), "no traces captured") {
		t.Errorf("disabled tracer: got %q", buf.String())
	}
}

func TestUnknownMetaCommand(t *testing.T) {
	engine := sql.NewEngine()
	var buf strings.Builder
	newShell(engine).metaCommand(&buf, "\\bogus")
	if !strings.Contains(buf.String(), "unknown command") {
		t.Errorf("got %q, want unknown-command message", buf.String())
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
