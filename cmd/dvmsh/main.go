// Command dvmsh is an interactive SQL shell over the deferred view
// maintenance engine. Statements end with ';'. Besides the usual DDL/DML
// it supports the maintenance statements of the paper's Figure 3:
//
//	CREATE MATERIALIZED VIEW v REFRESH DEFERRED [LOGGED|DIFFERENTIAL|COMBINED [MIN]] AS SELECT ...
//	CREATE MATERIALIZED VIEW v REFRESH IMMEDIATE AS SELECT ...
//	REFRESH v; PROPAGATE v; PARTIAL REFRESH v; RECOMPUTE v; CHECK INVARIANT v;
//
// A file of statements can be piped on stdin, or passed with -f.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dvm/internal/sql"
)

func main() {
	file := flag.String("f", "", "execute statements from this file, then exit")
	load := flag.String("load", "", "restore an engine snapshot before starting")
	save := flag.String("save", "", "write an engine snapshot on clean exit")
	flag.Parse()

	engine := sql.NewEngine()
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		engine, err = sql.LoadEngine(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	}
	saveAndExit := func(code int) {
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := engine.SaveTo(f); err != nil {
				_ = f.Close() // the snapshot is already broken; the write error is what matters
				fmt.Fprintln(os.Stderr, "save:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		os.Exit(code)
	}

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results, err := engine.ExecScript(string(data))
		for _, r := range results {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		saveAndExit(0)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Println("dvm shell — deferred view maintenance (SIGMOD '96). End statements with ';'.")
	}
	var buf strings.Builder
	prompt(interactive, buf.Len() > 0)
	for in.Scan() {
		line := in.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		text := strings.TrimSpace(buf.String())
		if text == "" {
			prompt(interactive, false)
			continue
		}
		if text == "quit" || text == "exit" {
			saveAndExit(0)
		}
		if !strings.HasSuffix(text, ";") {
			prompt(interactive, true)
			continue
		}
		buf.Reset()
		results, err := engine.ExecScript(text)
		for _, r := range results {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		prompt(interactive, false)
	}
	saveAndExit(0)
}

func prompt(interactive, continuation bool) {
	if !interactive {
		return
	}
	if continuation {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("dvm> ")
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
