// Command dvmsh is an interactive SQL shell over the deferred view
// maintenance engine. Statements end with ';'. Besides the usual DDL/DML
// it supports the maintenance statements of the paper's Figure 3:
//
//	CREATE MATERIALIZED VIEW v REFRESH DEFERRED [LOGGED|DIFFERENTIAL|COMBINED [MIN]] AS SELECT ...
//	CREATE MATERIALIZED VIEW v REFRESH IMMEDIATE AS SELECT ...
//	REFRESH v; PROPAGATE v; PARTIAL REFRESH v; RECOMPUTE v; CHECK INVARIANT v;
//
// Shell meta-commands start with a backslash on their own line:
//
//	\stats [prefix]      print the engine's metrics (docs/observability.md),
//	                     optionally only families starting with prefix —
//	                     e.g. \stats shard for the per-shard families
//	                     (shard_fold_tuples, shard_log_tuples) of a
//	                     WithShards engine
//	\stats rate [prefix] print what changed since the previous
//	                     \stats rate (or shell start): counter/histogram
//	                     rates per second, gauge deltas
//	\trace [n]           print the last n captured trace trees (default 5),
//	                     newest first (docs/observability.md "Tracing")
//
// A file of statements can be piped on stdin, or passed with -f.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dvm/internal/obs"
	"dvm/internal/obs/trace"
	"dvm/internal/sql"
)

func main() {
	file := flag.String("f", "", "execute statements from this file, then exit")
	load := flag.String("load", "", "restore an engine snapshot before starting")
	save := flag.String("save", "", "write an engine snapshot on clean exit")
	traceSpec := flag.String("trace", "all", "trace sampling: off|all|rate=N|threshold=DUR (inspect with \\trace)")
	flag.Parse()

	engine := sql.NewEngine(sql.WithTraceSpec(*traceSpec))
	if err := engine.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		engine, err = sql.LoadEngine(f, sql.WithTraceSpec(*traceSpec))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	}
	saveAndExit := func(code int) {
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := engine.SaveTo(f); err != nil {
				_ = f.Close() // the snapshot is already broken; the write error is what matters
				fmt.Fprintln(os.Stderr, "save:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		os.Exit(code)
	}

	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		in := bufio.NewScanner(f)
		in.Buffer(make([]byte, 1<<20), 1<<20)
		err = runLines(newShell(engine), in, false, true)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		saveAndExit(0)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Println("dvm shell — deferred view maintenance (SIGMOD '96). End statements with ';'.")
	}
	if err := runLines(newShell(engine), in, interactive, false); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
	}
	saveAndExit(0)
}

// runLines drives the statement loop: lines accumulate until a ';',
// backslash meta-commands execute immediately. With stopOnErr the first
// statement error aborts (batch -f mode); otherwise errors are printed
// and the loop continues (interactive mode).
func runLines(sh *shell, in *bufio.Scanner, interactive, stopOnErr bool) error {
	engine := sh.engine
	var buf strings.Builder
	prompt(interactive, false)
	for in.Scan() {
		line := in.Text()
		if buf.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), "\\") {
			sh.metaCommand(os.Stdout, strings.TrimSpace(line))
			prompt(interactive, false)
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		text := strings.TrimSpace(buf.String())
		if text == "" {
			prompt(interactive, false)
			continue
		}
		if text == "quit" || text == "exit" {
			return nil
		}
		if !strings.HasSuffix(text, ";") {
			prompt(interactive, true)
			continue
		}
		buf.Reset()
		results, err := engine.ExecScript(text)
		for _, r := range results {
			fmt.Println(r)
		}
		if err != nil {
			if stopOnErr {
				return err
			}
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		prompt(interactive, false)
	}
	return nil
}

// shell carries the session state meta-commands need across
// invocations: the engine plus the snapshot baseline \stats rate
// diffs against.
type shell struct {
	engine *sql.Engine
	// prevSnap/prevAt are the \stats rate baseline: the registry
	// snapshot (and wall time) at shell start, advanced by every
	// \stats rate call so consecutive calls show successive windows.
	prevSnap obs.Snapshot
	prevAt   time.Time
}

// newShell wraps an engine with shell state, capturing the initial
// \stats rate baseline.
func newShell(engine *sql.Engine) *shell {
	return &shell{
		engine:   engine,
		prevSnap: engine.Manager().Obs().Snapshot(),
		prevAt:   time.Now(),
	}
}

// metaCommand handles backslash commands (\stats [prefix],
// \stats rate [prefix], \trace [n]), writing output to w.
func (sh *shell) metaCommand(w io.Writer, cmd string) {
	engine := sh.engine
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\stats":
		if len(fields) > 1 && fields[1] == "rate" {
			sh.statsRate(w, fields[2:])
			return
		}
		snap := engine.Manager().Obs().Snapshot()
		if len(fields) > 1 {
			snap = snap.Filter(fields[1])
		}
		fmt.Fprint(w, snap.String())
	case "\\trace":
		n := 5
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				fmt.Fprintln(w, "usage: \\trace [n]")
				return
			}
			n = v
		}
		tracer := engine.Manager().Tracer()
		traces := tracer.Last(n)
		if len(traces) == 0 {
			fmt.Fprintf(w, "no traces captured (sampling mode: %s)\n", tracer.Mode())
			return
		}
		fmt.Fprint(w, trace.RenderAll(traces))
	default:
		fmt.Fprintf(w, "unknown command %s (try \\stats or \\trace)\n", fields[0])
	}
}

// statsRate renders the metric movement since the previous baseline
// (obs.RateString) and advances the baseline, so each call reports the
// window since the last one. An optional prefix filters both snapshots.
func (sh *shell) statsRate(w io.Writer, args []string) {
	cur := sh.engine.Manager().Obs().Snapshot()
	now := time.Now()
	prev, dt := sh.prevSnap, now.Sub(sh.prevAt)
	sh.prevSnap, sh.prevAt = cur, now
	if len(args) > 0 {
		prev, cur = prev.Filter(args[0]), cur.Filter(args[0])
	}
	fmt.Fprintf(w, "rate over the last %v:\n", dt.Round(time.Millisecond))
	fmt.Fprint(w, obs.RateString(prev, cur, dt))
}

func prompt(interactive, continuation bool) {
	if !interactive {
		return
	}
	if continuation {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("dvm> ")
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
