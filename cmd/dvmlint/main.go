// Command dvmlint runs the repo-specific static-analysis suite over
// the module: lock-discipline, bag-mutation, nondeterministic-
// iteration, dropped-error, and invariant-touch (see
// docs/static-analysis.md). It prints one "file:line:col: [check]
// message" per finding and exits non-zero if any survive suppression.
//
// Usage:
//
//	dvmlint [-checks check1,check2] [./...]
//
// Package patterns are accepted for command-line compatibility but the
// whole module containing the working directory is always analyzed —
// the analyzers are cross-cutting, so partial loads would miss
// inter-package facts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dvm/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-28s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := lint.RunAnalyzers(pkgs, analyzers, lint.DefaultConfig())
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dvmlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
