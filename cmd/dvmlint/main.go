// Command dvmlint runs the repo-specific static-analysis suite over
// the module: intraprocedural checks (lock-discipline, bag-mutation,
// nondeterministic-iteration, dropped-error, invariant-touch,
// span-discipline, doc-comment) plus the interprocedural ones built on
// the whole-module call graph (lock-order, locked-contract, state-bug)
// — see docs/static-analysis.md. It prints one "file:line:col: [check]
// message" per finding, or a JSON array with -json.
//
// Usage:
//
//	dvmlint [-checks check1,check2] [-list] [-json] [./...]
//
// -check is accepted as an alias of -checks, and -list prints the
// analyzer catalogue (name and one-line doc) without running anything.
//
// Exit codes: 0 = clean, 1 = findings survived suppression, 2 = the
// package set failed to load or type-check (or the flags were invalid),
// so CI can distinguish lint findings from a broken build.
//
// Package patterns are accepted for command-line compatibility but the
// whole module containing the working directory is always analyzed —
// the analyzers are cross-cutting, so partial loads would miss
// inter-package facts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dvm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses flags, analyzes the
// module containing the current directory, renders findings to stdout,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dvmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	fs.StringVar(checks, "check", "", "alias of -checks")
	list := fs.Bool("list", false, "list available checks and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (stable field names, position-sorted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-28s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	all := lint.RunAnalyzers(pkgs, analyzers, lint.DefaultConfig())
	cwd, _ := os.Getwd()
	var findings []lint.Finding
	for _, f := range all {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
		}
		// Warnings (e.g. a suppression naming an unknown check) go to
		// stderr and never affect the exit code or the JSON contract.
		if f.Warning {
			fmt.Fprintf(stderr, "%s:%d:%d: [%s] warning: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
			continue
		}
		findings = append(findings, f)
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dvmlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
