package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dvm/internal/lint"
)

// chdir moves the process into dir for the duration of the test.
// (os.Chdir rather than t.Chdir: the module's language level predates
// the latter.)
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// writeModule lays out a throwaway single-package module.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitCodeClean: a module with nothing to report exits 0.
func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package tmpmod\n\nfunc F() int { return 1 }\n",
	})
	chdir(t, dir)
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr %q); want 0", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed findings: %q", out.String())
	}
}

// TestExitCodeFindings: surviving findings exit 1, and -json renders
// them as a parseable array.
func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"leaky.go": "package tmpmod\n\nimport \"os\"\n\nfunc F() {\n\tos.Remove(\"x\")\n}\n",
	})
	chdir(t, dir)
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("exit = %d (stdout %q, stderr %q); want 1", code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-json"}, &out, &errb); code != 1 {
		t.Fatalf("-json exit = %d; want 1", code)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json output is empty; want the dropped-error finding")
	}
	if findings[0]["check"] != "dropped-error" {
		t.Fatalf("finding check = %v; want dropped-error", findings[0]["check"])
	}
}

// TestUnknownCheckSuppressionWarns: a //dvmlint:ignore naming a check
// no analyzer recognizes is advisory — a stderr warning, exit 0, and
// absent from -json — so renaming an analyzer never breaks builds that
// carried suppressions for the old name.
func TestUnknownCheckSuppressionWarns(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package tmpmod\n\n//dvmlint:ignore no-such-check left over from a renamed analyzer\nfunc F() int { return 1 }\n",
	})
	chdir(t, dir)
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stdout %q, stderr %q); want 0: unknown-check suppressions warn, not error", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("warning leaked to stdout: %q", out.String())
	}
	if !strings.Contains(errb.String(), "warning:") || !strings.Contains(errb.String(), `unknown check "no-such-check"`) {
		t.Fatalf("stderr = %q; want an unknown-check warning", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-json"}, &out, &errb); code != 0 {
		t.Fatalf("-json exit = %d; want 0", code)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Fatalf("-json carries the warning: %v; warnings are stderr-only", findings)
	}
}

// TestExitCodeLoadFailure: a package that fails to parse or type-check
// exits 2, distinct from lint findings, so CI never mistakes a broken
// build for a clean one.
func TestExitCodeLoadFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"broken.go": "package tmpmod\n\nfunc F( {\n",
	})
	chdir(t, dir)
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit = %d; want 2 for a load failure", code)
	}
	if errb.Len() == 0 {
		t.Fatal("load failure reported nothing on stderr")
	}
}

// TestExitCodeBadFlags: unknown checks and unparseable flags exit 2,
// through both spellings of the selection flag.
func TestExitCodeBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "no-such-check"}, &out, &errb); code != 2 {
		t.Fatalf("unknown check exit = %d; want 2", code)
	}
	if code := run([]string{"-check=no-such-check"}, &out, &errb); code != 2 {
		t.Fatalf("unknown -check exit = %d; want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d; want 2", code)
	}
}

// TestListChecks: -list prints one "name  doc" line per registered
// analyzer — the dataflow-layer quartet included — runs nothing, and
// exits 0.
func TestListChecks(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d (stderr %q); want 0", code, errb.String())
	}
	lines := strings.Count(strings.TrimRight(out.String(), "\n"), "\n") + 1
	if lines != len(lint.All()) {
		t.Fatalf("-list printed %d lines; want one per analyzer (%d)", lines, len(lint.All()))
	}
	for _, name := range []string{"closure-purity", "resource-lifecycle", "error-flow", "nilness", "dropped-error"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output misses %q", name)
		}
	}
}

// TestCheckSelection: -check narrows the run to the named analyzers —
// a module with only a dropped-error finding is clean under
// -check=nilness and dirty under -check=dropped-error.
func TestCheckSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"leaky.go": "package tmpmod\n\nimport \"os\"\n\nfunc F() {\n\tos.Remove(\"x\")\n}\n",
	})
	chdir(t, dir)
	var out, errb bytes.Buffer
	if code := run([]string{"-check=nilness"}, &out, &errb); code != 0 {
		t.Fatalf("-check=nilness exit = %d (stdout %q); want 0: the finding belongs to another analyzer", code, out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-check=dropped-error"}, &out, &errb); code != 1 {
		t.Fatalf("-check=dropped-error exit = %d; want 1", code)
	}
	if !strings.Contains(out.String(), "[dropped-error]") {
		t.Fatalf("selected run output = %q; want the dropped-error finding", out.String())
	}
}

// TestDvmlintWallClock guards the tier-1 gate's usability: the full
// suite — interprocedural passes included — must finish over the whole
// module within a generous bound.
func TestDvmlintWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock guard skipped in -short mode")
	}
	chdir(t, filepath.Join("..", ".."))
	start := time.Now()
	code := run(nil, io.Discard, io.Discard)
	elapsed := time.Since(start)
	if code != 0 {
		t.Fatalf("dvmlint over the module exited %d; want 0", code)
	}
	// Tightened from 120s when RunAnalyzers went concurrent (one
	// goroutine per analyzer over shared interprocedural facts); a full
	// run measures single-digit seconds, so 60s is still generous.
	const bound = 60 * time.Second
	if elapsed > bound {
		t.Fatalf("dvmlint over the module took %s, over the %s bound; the interprocedural layer is too slow for the tier-1 gate", elapsed, bound)
	}
	t.Logf("full-suite run over the module: %s", elapsed)
}
