// Doccheck keeps the documentation's code references honest. It scans
// markdown files for two kinds of reference and resolves each against
// the working tree:
//
//   - file:line anchors written as `path/to/file.go:NN`, optionally
//     followed by a symbol in parentheses, e.g.
//     `internal/core/refresh.go:23` (`Refresh`). The file must exist,
//     line NN must exist in it, and when a symbol is given its name
//     must appear within ±2 lines of NN — so anchors fail loudly when
//     the code they point at moves.
//   - relative markdown links [text](path) (fragments and external
//     URLs are skipped). The target must exist relative to the
//     referring document.
//
// Usage: doccheck [files...]; with no arguments it checks README.md
// and docs/*.md from the repository root. Exit status 1 if any
// reference is broken. Run by scripts/check.sh and make check.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// anchorRe matches `path.go:NN` optionally followed by (`Symbol`).
// The path must contain a slash (so prose like `file.go:NN`
// placeholders with bare names do not trip the checker) and the
// extension is restricted to source/doc files we anchor into.
var anchorRe = regexp.MustCompile(
	"`([A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)+\\.(?:go|md|sh|sql)):([0-9]+)`" +
		"(?:\\s*\\(`([A-Za-z_][A-Za-z0-9_]*)`\\))?")

// linkRe matches markdown inline links [text](target).
var linkRe = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

// symbolSlack is how far (in lines) a named symbol may drift from its
// anchored line before the anchor is considered stale.
const symbolSlack = 2

func main() {
	docs := os.Args[1:]
	if len(docs) == 0 {
		docs = []string{"README.md"}
		globbed, err := filepath.Glob(filepath.Join("docs", "*.md"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		docs = append(docs, globbed...)
	}
	broken := 0
	checked := 0
	for _, doc := range docs {
		b, c, err := checkDoc(doc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		broken += b
		checked += c
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken reference(s) out of %d\n", broken, checked)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d reference(s) across %d file(s) all resolve\n", checked, len(docs))
}

// checkDoc validates every anchor and relative link in one markdown
// file, reporting each failure to stderr. It returns the number of
// broken and total references.
func checkDoc(doc string) (broken, checked int, err error) {
	data, err := os.ReadFile(doc)
	if err != nil {
		return 0, 0, err
	}
	fail := func(line int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "%s:%d: %s\n", doc, line, fmt.Sprintf(format, args...))
		broken++
	}
	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		for _, m := range anchorRe.FindAllStringSubmatch(line, -1) {
			checked++
			path, numStr, symbol := m[1], m[2], m[3]
			n, _ := strconv.Atoi(numStr)
			lines, err := fileLines(path)
			if err != nil {
				fail(lineNo, "anchor `%s:%d` — %v", path, n, err)
				continue
			}
			if n < 1 || n > len(lines) {
				fail(lineNo, "anchor `%s:%d` — file has only %d lines", path, n, len(lines))
				continue
			}
			if symbol != "" && !symbolNear(lines, n, symbol) {
				fail(lineNo, "anchor `%s:%d` (`%s`) — symbol not found within ±%d lines (code moved?)",
					path, n, symbol, symbolSlack)
			}
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			checked++
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment after Cut — already counted, always fine
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				fail(lineNo, "link (%s) — target %s does not exist", m[1], resolved)
			}
		}
	}
	return broken, checked, nil
}

// fileCache avoids re-reading a file for every anchor into it.
var fileCache = map[string][]string{}

func fileLines(path string) ([]string, error) {
	if lines, ok := fileCache[path]; ok {
		return lines, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	fileCache[path] = lines
	return lines, nil
}

// symbolNear reports whether symbol occurs as a word on any line
// within symbolSlack of the 1-based line n.
func symbolNear(lines []string, n int, symbol string) bool {
	lo := max(n-1-symbolSlack, 0)
	hi := min(n-1+symbolSlack, len(lines)-1)
	re := regexp.MustCompile(`\b` + regexp.QuoteMeta(symbol) + `\b`)
	for i := lo; i <= hi; i++ {
		if re.MatchString(lines[i]) {
			return true
		}
	}
	return false
}
