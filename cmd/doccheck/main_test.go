package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out files under a temp dir and chdirs into it for the
// duration of the test (anchors resolve relative to the working
// directory, as in the real invocation from the repo root).
func writeTree(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	fileCache = map[string][]string{}
}

const someGo = "package p\n\nvar x = 1\n\n// Frob frobs.\nfunc Frob() {}\n"

func TestAnchorsResolve(t *testing.T) {
	writeTree(t, map[string]string{
		"pkg/some.go": someGo,
		"doc.md": "See `pkg/some.go:6` (`Frob`) and plain `pkg/some.go:1`.\n" +
			"Also a [link](pkg/some.go) and an [external](https://example.com/x:9).\n",
	})
	broken, checked, err := checkDoc("doc.md")
	if err != nil || broken != 0 {
		t.Fatalf("broken=%d err=%v; want clean", broken, err)
	}
	if checked != 3 { // two anchors + one relative link; external skipped
		t.Fatalf("checked=%d; want 3", checked)
	}
}

func TestBrokenReferences(t *testing.T) {
	writeTree(t, map[string]string{
		"pkg/some.go": someGo,
		"doc.md": "Missing file `pkg/gone.go:3`.\n" +
			"Line out of range `pkg/some.go:99`.\n" +
			"Symbol drifted `pkg/some.go:1` (`Frob`).\n" + // Frob is on lines 5-6, > ±2 from 1
			"Dead [link](nope.md).\n",
	})
	broken, checked, err := checkDoc("doc.md")
	if err != nil {
		t.Fatal(err)
	}
	if broken != 4 || checked != 4 {
		t.Fatalf("broken=%d checked=%d; want 4 and 4", broken, checked)
	}
}

func TestSymbolSlack(t *testing.T) {
	writeTree(t, map[string]string{
		"pkg/some.go": someGo,
		// Frob's doc comment is on line 5; ±2 slack makes an anchor at
		// line 4 (the blank separator) valid.
		"doc.md": "`pkg/some.go:4` (`Frob`)\n",
	})
	broken, _, err := checkDoc("doc.md")
	if err != nil || broken != 0 {
		t.Fatalf("broken=%d err=%v; anchor within slack should pass", broken, err)
	}
}

func TestFragmentsAndBareNamesSkipped(t *testing.T) {
	writeTree(t, map[string]string{
		"doc.md": "A [section link](#enforcement) and prose `file.go:12` with no path.\n",
	})
	broken, checked, err := checkDoc("doc.md")
	if err != nil || broken != 0 {
		t.Fatalf("broken=%d err=%v; want clean", broken, err)
	}
	if checked != 0 {
		t.Fatalf("checked=%d; fragment links and slashless anchors should be skipped", checked)
	}
}
