package dvm_test

import (
	"bytes"
	"fmt"
	"testing"

	"dvm"
	"dvm/internal/bag"
	"dvm/internal/core"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

// shardPair builds a serial manager and an n-shard manager over two
// independently set-up copies of the same retail state, with two
// same-seed generators so both receive the identical transaction
// stream. The view is the Example 1.1 join, named "hv" in both.
func shardPair(t *testing.T, n int, seed int64) (serial, sharded *core.Manager, wSerial, wSharded *workload.Retail) {
	t.Helper()
	cfg := workload.RetailConfig{
		Customers:    120,
		HighFraction: 0.25,
		InitialSales: 600,
		Items:        60,
		ZipfS:        1.2,
		Seed:         seed,
	}
	build := func(opts ...core.ManagerOption) (*core.Manager, *workload.Retail) {
		db := storage.NewDatabase()
		w := workload.NewRetail(cfg)
		if err := w.Setup(db); err != nil {
			t.Fatal(err)
		}
		m := core.NewManager(db, opts...)
		def, err := w.ViewDef()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.DefineView("hv", def, core.Combined); err != nil {
			t.Fatal(err)
		}
		return m, w
	}
	serial, wSerial = build()
	sharded, wSharded = build(core.WithShards(n))
	return serial, sharded, wSerial, wSharded
}

// mergedBag returns the contents of a logical table: the table itself
// when unsharded, or the multiset union of its shard members.
func mergedBag(t *testing.T, db *storage.Database, logical string) *bag.Bag {
	t.Helper()
	if _, ok := db.Sharded(logical); ok {
		tabs, err := db.ShardTables(logical)
		if err != nil {
			t.Fatal(err)
		}
		out := bag.New()
		for _, tb := range tabs {
			out.AddBag(tb.Data())
		}
		return out
	}
	b, err := db.Bag(logical)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardSumEqualsUnsharded is the core Σ-equality contract: after
// identical transactions, every sharded log and differential table
// sums (⊎ over members) to exactly the serial manager's table — first
// with logs pending, then after a propagate has folded them into
// ∇MV/△MV.
func TestShardSumEqualsUnsharded(t *testing.T) {
	serial, sharded, ws, wh := shardPair(t, 4, 91)

	for tick := 0; tick < 12; tick++ {
		txA := ws.Basket(2, 6, 0.2)
		txB := wh.Basket(2, 6, 0.2)
		if err := serial.Execute(txA); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Execute(txB); err != nil {
			t.Fatal(err)
		}
	}
	fa, err := ws.ScoreFlip()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := wh.ScoreFlip()
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Execute(fa); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Execute(fb); err != nil {
		t.Fatal(err)
	}

	logical := []string{
		"__log_del_sales__hv", "__log_ins_sales__hv",
		"__log_del_customer__hv", "__log_ins_customer__hv",
		"__dmv_del_hv", "__dmv_add_hv",
	}
	check := func(when string) {
		t.Helper()
		for _, name := range logical {
			got := mergedBag(t, sharded.DB(), name)
			want := mergedBag(t, serial.DB(), name)
			if !got.Equal(want) {
				t.Fatalf("%s: Σ shard %s = %v, serial has %v", when, name, got, want)
			}
		}
		if err := sharded.CheckShardInvariant("hv"); err != nil {
			t.Fatalf("%s: %v", when, err)
		}
	}
	check("logs pending")

	if err := serial.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	check("after propagate")

	if err := serial.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	check("after refresh")
	mvS, err := serial.Query("hv")
	if err != nil {
		t.Fatal(err)
	}
	mvH, err := sharded.Query("hv")
	if err != nil {
		t.Fatal(err)
	}
	if !mvS.Equal(mvH) {
		t.Fatalf("refreshed MVs differ: serial %v, sharded %v", mvS, mvH)
	}
}

// TestShardedPoliciesMatchSerial drives the same mixed retail day
// through serial and 4-shard managers under each policy (1: propagate
// + refresh_C, 2: propagate + partial_refresh_C, 3: on-demand) and
// requires identical stale and fresh answers plus clean invariants.
func TestShardedPoliciesMatchSerial(t *testing.T) {
	policies := []struct {
		name string
		p    core.Policy
	}{
		{"policy1", core.Policy{PropagateEvery: 2, RefreshEvery: 10}},
		{"policy2", core.Policy{PropagateEvery: 2, RefreshEvery: 10, Partial: true}},
		{"policy3-ondemand", core.Policy{PropagateEvery: 2, OnDemand: true}},
	}
	for pi, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			serial, sharded, ws, wh := shardPair(t, 4, int64(100+pi))
			rs, err := serial.NewRunner("hv", pol.p)
			if err != nil {
				t.Fatal(err)
			}
			rh, err := sharded.NewRunner("hv", pol.p)
			if err != nil {
				t.Fatal(err)
			}
			for tick := 1; tick <= 40; tick++ {
				txA := ws.Basket(2, 6, 0.2)
				txB := wh.Basket(2, 6, 0.2)
				if err := serial.Execute(txA); err != nil {
					t.Fatal(err)
				}
				if err := sharded.Execute(txB); err != nil {
					t.Fatal(err)
				}
				if tick%13 == 0 {
					fa, err := ws.ScoreFlip()
					if err != nil {
						t.Fatal(err)
					}
					fb, err := wh.ScoreFlip()
					if err != nil {
						t.Fatal(err)
					}
					if err := serial.Execute(fa); err != nil {
						t.Fatal(err)
					}
					if err := sharded.Execute(fb); err != nil {
						t.Fatal(err)
					}
				}
				if err := rs.Tick(); err != nil {
					t.Fatal(err)
				}
				if err := rh.Tick(); err != nil {
					t.Fatal(err)
				}
				if tick%10 == 0 {
					fs, err := serial.QueryFresh("hv", nil)
					if err != nil {
						t.Fatal(err)
					}
					fh, err := sharded.QueryFresh("hv", nil)
					if err != nil {
						t.Fatal(err)
					}
					if !fs.Equal(fh) {
						t.Fatalf("tick %d: fresh answers differ", tick)
					}
				}
			}
			if pol.p.OnDemand {
				if err := rs.RefreshNow(); err != nil {
					t.Fatal(err)
				}
				if err := rh.RefreshNow(); err != nil {
					t.Fatal(err)
				}
			}
			qs, err := serial.Query("hv")
			if err != nil {
				t.Fatal(err)
			}
			qh, err := sharded.Query("hv")
			if err != nil {
				t.Fatal(err)
			}
			if !qs.Equal(qh) {
				t.Fatalf("stale answers differ: serial %v, sharded %v", qs, qh)
			}
			if err := serial.CheckInvariant("hv"); err != nil {
				t.Fatal(err)
			}
			if err := sharded.CheckInvariant("hv"); err != nil {
				t.Fatal(err)
			}
			if err := sharded.CheckShardInvariant("hv"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedSnapshotRoundTrip covers both persistence paths:
//
//  1. storage-level: a sharded manager's whole database (shard members
//     and their specs) survives Save → Load byte-exactly, including a
//     second Save producing identical bytes;
//  2. engine-level: SaveTo → LoadEngine(WithShards) re-materializes a
//     sharded view from the restored base tables and keeps answering
//     and propagating correctly.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	t.Run("storage", func(t *testing.T) {
		_, sharded, _, wh := shardPair(t, 3, 7)
		for i := 0; i < 8; i++ {
			if err := sharded.Execute(wh.Basket(2, 5, 0.2)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sharded.Propagate("hv"); err != nil {
			t.Fatal(err)
		}
		db := sharded.DB()
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := storage.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(restored.ShardSpecs()), len(db.ShardSpecs()); got != want {
			t.Fatalf("restored %d shard specs, want %d", got, want)
		}
		for _, spec := range db.ShardSpecs() {
			r, ok := restored.Sharded(spec.Logical)
			if !ok || r != spec {
				t.Fatalf("spec %q: restored %+v, want %+v", spec.Logical, r, spec)
			}
		}
		for _, name := range db.Names() {
			a, err := db.Bag(name)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Bag(name)
			if err != nil {
				t.Fatalf("restored database lacks %q: %v", name, err)
			}
			if !a.Equal(b) {
				t.Fatalf("table %q differs after round trip", name)
			}
		}
		var buf2 bytes.Buffer
		if err := restored.Save(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("second Save is not byte-identical")
		}
	})

	t.Run("engine", func(t *testing.T) {
		e := dvm.NewEngine(dvm.WithShards(2))
		script := `
			CREATE TABLE sales (custId INT, itemNo INT, quantity INT);
			CREATE TABLE customer (custId INT, score STRING);
			CREATE MATERIALIZED VIEW hv REFRESH DEFERRED COMBINED AS
				SELECT c.custId, s.itemNo FROM customer c, sales s
				WHERE c.custId = s.custId AND c.score = 'High' AND s.quantity != 0;
		`
		if _, err := e.ExecScript(script); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			stmt := fmt.Sprintf(`INSERT INTO customer VALUES (%d, '%s')`, i, map[bool]string{true: "High", false: "Low"}[i%2 == 0])
			if _, err := e.Exec(stmt); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Exec(fmt.Sprintf(`INSERT INTO sales VALUES (%d, %d, 1)`, i, 100+i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Exec(`PROPAGATE hv`); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec(`PARTIAL REFRESH hv`); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.SaveTo(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := dvm.LoadEngine(&buf, dvm.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.Exec(`SELECT * FROM hv`)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Exec(`SELECT * FROM hv`)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Rows.Equal(got.Rows) {
			t.Fatalf("restored view differs: %v vs %v", want.Rows, got.Rows)
		}
		// The restored engine's view is sharded and still maintains.
		if _, err := restored.Exec(`INSERT INTO sales VALUES (0, 999, 2)`); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Exec(`PROPAGATE hv`); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Exec(`REFRESH hv`); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Exec(`CHECK INVARIANT hv`); err != nil {
			t.Fatal(err)
		}
		after, err := restored.Exec(`SELECT * FROM hv`)
		if err != nil {
			t.Fatal(err)
		}
		if after.Rows.Len() != want.Rows.Len()+1 {
			t.Fatalf("restored view did not pick up the new sale: %d rows, want %d", after.Rows.Len(), want.Rows.Len()+1)
		}
	})
}
