// Package dvm_test hosts the testing.B benchmark harness: one benchmark
// per experiment in DESIGN.md's index (regenerating the EXPERIMENTS.md
// tables), plus micro-benchmarks of the layers the experiments rest on
// (bag operations, evaluation, differential compilation, makesafe,
// refresh variants).
package dvm_test

import (
	"fmt"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/bench"
	"dvm/internal/core"
	"dvm/internal/delta"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
	"dvm/internal/workload"
)

// --- Experiment benchmarks (one per EXPERIMENTS.md table) ---

func benchExperiment(b *testing.B, run func() (*bench.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkE1StateBugJoin(b *testing.B) { benchExperiment(b, bench.E1StateBugJoin) }
func BenchmarkE2StateBugDiff(b *testing.B) { benchExperiment(b, bench.E2StateBugDiff) }
func BenchmarkE3Overhead(b *testing.B)     { benchExperiment(b, bench.E3Overhead) }
func BenchmarkE4Downtime(b *testing.B)     { benchExperiment(b, bench.E4Downtime) }
func BenchmarkE5PropagationSweep(b *testing.B) {
	benchExperiment(b, bench.E5PropagationSweep)
}
func BenchmarkE6RestrictedClass(b *testing.B) { benchExperiment(b, bench.E6RestrictedClass) }
func BenchmarkE7Minimality(b *testing.B)      { benchExperiment(b, bench.E7Minimality) }
func BenchmarkE8IncrVsRecompute(b *testing.B) { benchExperiment(b, bench.E8IncrVsRecompute) }
func BenchmarkE9Batching(b *testing.B)        { benchExperiment(b, bench.E9Batching) }

// --- Per-scenario makesafe cost (the E3 rows as isolated benches) ---

func retailManager(b *testing.B, sc core.Scenario) (*core.Manager, *workload.Retail) {
	b.Helper()
	db := storage.NewDatabase()
	w := workload.NewRetail(workload.RetailConfig{
		Customers: 300, HighFraction: 0.2, InitialSales: 2000, Items: 200, ZipfS: 1.2, Seed: 17,
	})
	if err := w.Setup(db); err != nil {
		b.Fatal(err)
	}
	m := core.NewManager(db)
	def, err := w.ViewDef()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.DefineView("v", def, sc); err != nil {
		b.Fatal(err)
	}
	return m, w
}

func benchExecute(b *testing.B, sc core.Scenario) {
	m, w := retailManager(b, sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Execute(w.SalesBatch(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakeSafeImmediate(b *testing.B)  { benchExecute(b, core.Immediate) }
func BenchmarkMakeSafeBaseLogs(b *testing.B)   { benchExecute(b, core.BaseLogs) }
func BenchmarkMakeSafeDiffTables(b *testing.B) { benchExecute(b, core.DiffTables) }
func BenchmarkMakeSafeCombined(b *testing.B)   { benchExecute(b, core.Combined) }

// --- Refresh variants over a fixed pending-update volume ---

func benchRefresh(b *testing.B, sc core.Scenario, refresh func(m *core.Manager) error) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, w := retailManager(b, sc)
		if err := m.Execute(w.SalesBatch(100)); err != nil {
			b.Fatal(err)
		}
		if sc == core.Combined {
			if err := m.Propagate("v"); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := refresh(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefreshBaseLogs(b *testing.B) {
	benchRefresh(b, core.BaseLogs, func(m *core.Manager) error { return m.Refresh("v") })
}

func BenchmarkRefreshCombinedFull(b *testing.B) {
	benchRefresh(b, core.Combined, func(m *core.Manager) error { return m.Refresh("v") })
}

func BenchmarkRefreshCombinedPartial(b *testing.B) {
	benchRefresh(b, core.Combined, func(m *core.Manager) error { return m.PartialRefresh("v") })
}

func BenchmarkRefreshRecompute(b *testing.B) {
	benchRefresh(b, core.BaseLogs, func(m *core.Manager) error { return m.RefreshRecompute("v") })
}

// --- Micro-benchmarks: bag algebra ---

func makeBag(n, domain int) *bag.Bag {
	b := bag.New()
	for i := 0; i < n; i++ {
		b.Add(schema.Row(i%domain, i), 1)
	}
	return b
}

func BenchmarkBagUnionAll(b *testing.B) {
	x := makeBag(10000, 5000)
	y := makeBag(10000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag.UnionAll(x, y)
	}
}

func BenchmarkBagMonus(b *testing.B) {
	x := makeBag(10000, 5000)
	y := makeBag(5000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag.Monus(x, y)
	}
}

func BenchmarkBagMin(b *testing.B) {
	x := makeBag(10000, 5000)
	y := makeBag(5000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag.Min(x, y)
	}
}

func BenchmarkBagDupElim(b *testing.B) {
	x := makeBag(10000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag.DupElim(x)
	}
}

func BenchmarkTupleKey(b *testing.B) {
	t := schema.Row(123456, "some-string-value", 3.25, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Key()
	}
}

// --- Micro-benchmarks: evaluation ---

func joinFixture(b *testing.B, rows int) (algebra.Expr, *storage.Database) {
	b.Helper()
	db := storage.NewDatabase()
	w := workload.NewRetail(workload.RetailConfig{
		Customers: 300, HighFraction: 0.2, InitialSales: rows, Items: 200, ZipfS: 1.2, Seed: 9,
	})
	if err := w.Setup(db); err != nil {
		b.Fatal(err)
	}
	def, err := w.ViewDef()
	if err != nil {
		b.Fatal(err)
	}
	return def, db
}

func BenchmarkEvalHashJoin(b *testing.B) {
	for _, rows := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			def, db := joinFixture(b, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := algebra.Eval(def, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalPostUpdateDelta measures evaluating ▼(L,Q)/▲(L,Q) for a
// join view with a 100-row log — the inner loop of refresh_BL and
// propagate_C.
func BenchmarkEvalPostUpdateDelta(b *testing.B) {
	m, w := retailManager(b, core.BaseLogs)
	if err := m.Execute(w.SalesBatch(100)); err != nil {
		b.Fatal(err)
	}
	v, err := m.View("v")
	if err != nil {
		b.Fatal(err)
	}
	past, err := m.PastExpr(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algebra.Eval(past, m.DB()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks: differential compilation ---

func BenchmarkDifferentiateJoinView(b *testing.B) {
	def, db := joinFixture(b, 100)
	cs := delta.ChangeSet{}
	for _, name := range algebra.BaseNames(def) {
		tb, _ := db.Table(name)
		cs[name] = struct {
			Deleted  algebra.Expr
			Inserted algebra.Expr
		}{
			Deleted:  algebra.NewBase(name+"_del", tb.Schema()),
			Inserted: algebra.NewBase(name+"_ins", tb.Schema()),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := delta.PostUpdate(cs, def); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeJoinView(b *testing.B) {
	def, db := joinFixture(b, 100)
	cs := delta.ChangeSet{}
	for _, name := range algebra.BaseNames(def) {
		tb, _ := db.Table(name)
		cs[name] = struct {
			Deleted  algebra.Expr
			Inserted algebra.Expr
		}{
			Deleted:  algebra.NewBase(name+"_del", tb.Schema()),
			Inserted: algebra.NewBase(name+"_ins", tb.Schema()),
		}
	}
	d, a, err := delta.PostUpdate(cs, def)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algebra.OptimizePair(d, a)
	}
}

// --- End-to-end transaction throughput with a mixed workload ---

func BenchmarkMixedWorkloadCombined(b *testing.B) {
	m, w := retailManager(b, core.Combined)
	runner, err := m.NewRunner("v", core.Policy{PropagateEvery: 8, RefreshEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Execute(w.MixedBatch(5, 1)); err != nil {
			b.Fatal(err)
		}
		if err := runner.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: the benchmark fixtures must leave invariants intact.
func TestBenchFixturesPreserveInvariants(t *testing.T) {
	db := storage.NewDatabase()
	w := workload.NewRetail(workload.RetailConfig{
		Customers: 50, HighFraction: 0.2, InitialSales: 200, Items: 50, ZipfS: 1.2, Seed: 3,
	})
	if err := w.Setup(db); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(db)
	def, err := w.ViewDef()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DefineView("v", def, core.Combined); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(schema.Row(1, 1, 1, 1.0)))); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariant("v"); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("v"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("v"); err != nil {
		t.Fatal(err)
	}
}
