package dvm_test

import (
	"bytes"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dvm"
	"dvm/internal/obs/trace"
)

// docSpanRe extracts the span name from one row of the span table in
// docs/observability.md: "| `core.refresh` | ...".
var docSpanRe = regexp.MustCompile("(?m)^\\| `([a-z0-9._]+)` \\|")

// documentedSpans parses the span names out of the marked table in
// docs/observability.md.
func documentedSpans(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("docs/observability.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	begin := strings.Index(text, "<!-- spans:begin -->")
	end := strings.Index(text, "<!-- spans:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("docs/observability.md: spans:begin/end markers missing or out of order")
	}
	out := map[string]bool{}
	for _, m := range docSpanRe.FindAllStringSubmatch(text[begin:end], -1) {
		out[m[1]] = true
	}
	if len(out) == 0 {
		t.Fatal("docs/observability.md: no span rows found between markers")
	}
	return out
}

// collectSpanNames walks every captured trace tree of a tracer into
// the accumulator set.
func collectSpanNames(tr *trace.Tracer, into map[string]bool) {
	var walk func(s *trace.Span)
	walk = func(s *trace.Span) {
		into[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, t := range tr.Last(tr.Len()) {
		walk(t.Root)
	}
}

// TestTraceDocsMatchRuntime enforces the span-name registry three
// ways: the constant table in internal/obs/trace/names.go, the span
// table in docs/observability.md, and the names actually emitted by an
// end-to-end retail run (SQL statements, every maintenance transaction
// kind, a view read, and a snapshot save/load round trip) must all be
// identical sets. A span emitted under an unregistered name, a
// registered name nothing emits, or an undocumented one fails here.
func TestTraceDocsMatchRuntime(t *testing.T) {
	// Two shards so PROPAGATE takes the sharded path and emits the
	// per-shard worker spans (core.propagate.shard).
	eng := dvm.NewEngine(dvm.WithTraceSpec("all"), dvm.WithShards(2))
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	script := `
CREATE TABLE sales (custId INT, itemNo INT, quantity INT, salesPrice FLOAT);
CREATE MATERIALIZED VIEW hv REFRESH DEFERRED COMBINED AS
SELECT s.custId, s.itemNo FROM sales s WHERE s.quantity != 0;
INSERT INTO sales VALUES (1, 10, 2, 9.99);
INSERT INTO sales VALUES (2, 11, 0, 5.00);
PROPAGATE hv;
PARTIAL REFRESH hv;
INSERT INTO sales VALUES (3, 12, 1, 7.50);
REFRESH hv;
RECOMPUTE hv;
SELECT * FROM hv;
`
	if _, err := eng.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	// core.query is the Go-API read path (SQL SELECTs lock inside
	// their statement span instead).
	if _, err := eng.Manager().Query("hv"); err != nil {
		t.Fatal(err)
	}

	// Save spans land on the saving engine's tracer; load spans on the
	// restored engine's. Union them.
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := dvm.LoadEngine(bytes.NewReader(buf.Bytes()), dvm.WithTraceSpec("all"))
	if err != nil {
		t.Fatal(err)
	}

	emitted := map[string]bool{}
	collectSpanNames(eng.Manager().Tracer(), emitted)
	collectSpanNames(restored.Manager().Tracer(), emitted)

	registered := map[string]bool{}
	for _, n := range trace.Names() {
		registered[n] = true
	}
	documented := documentedSpans(t)

	for _, pair := range []struct {
		aName, bName string
		a, b         map[string]bool
	}{
		{"runtime", "registry (trace.Names)", emitted, registered},
		{"registry (trace.Names)", "docs/observability.md", registered, documented},
		{"docs/observability.md", "runtime", documented, emitted},
	} {
		for n := range pair.a {
			if !pair.b[n] {
				t.Errorf("span %q present in %s but missing from %s", n, pair.aName, pair.bName)
			}
		}
	}
	if t.Failed() {
		var names []string
		for n := range emitted {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Logf("runtime emitted: %s", strings.Join(names, ", "))
	}
}
