package dvm_test

import (
	"fmt"
	"log"

	"dvm"
)

// ExampleNewEngine shows the SQL surface end to end: a deferred view
// goes stale after an update and catches up on REFRESH.
func ExampleNewEngine() {
	e := dvm.NewEngine()
	if _, err := e.ExecScript(`
		CREATE TABLE sales (item STRING, qty INT);
		CREATE MATERIALIZED VIEW big REFRESH DEFERRED COMBINED AS
			SELECT s.item, s.qty FROM sales s WHERE s.qty > 1;
		INSERT INTO sales VALUES ('apple', 3), ('pear', 1);
	`); err != nil {
		log.Fatal(err)
	}
	r, _ := e.Exec(`SELECT * FROM big`)
	fmt.Println("before refresh:", r.Rows.Len(), "rows")
	if _, err := e.Exec(`REFRESH big`); err != nil {
		log.Fatal(err)
	}
	r, _ = e.Exec(`SELECT * FROM big`)
	fmt.Println("after refresh: ", r.Rows.Len(), "rows")
	// Output:
	// before refresh: 0 rows
	// after refresh:  1 rows
}

// ExampleNewManager shows the algebra-level API: define a Combined view,
// run a transaction through makesafe, propagate, and partially refresh
// (the paper's Policy 2 steps).
func ExampleNewManager() {
	db := dvm.NewDatabase()
	sch := dvm.NewSchema(dvm.Col("x", dvm.TInt))
	if _, err := db.Create("events", sch, dvm.External); err != nil {
		log.Fatal(err)
	}
	def, err := dvm.NewSelect(dvm.Gt(dvm.A("x"), dvm.C(0)), dvm.NewBase("events", sch))
	if err != nil {
		log.Fatal(err)
	}
	mgr := dvm.NewManager(db)
	if _, err := mgr.DefineView("pos", def, dvm.Combined); err != nil {
		log.Fatal(err)
	}
	if err := mgr.Execute(dvm.Insert("events", dvm.BagOf(dvm.Row(5), dvm.Row(-5)))); err != nil {
		log.Fatal(err)
	}
	if err := mgr.Propagate("pos"); err != nil { // no view downtime
		log.Fatal(err)
	}
	if err := mgr.PartialRefresh("pos"); err != nil { // Policy 2
		log.Fatal(err)
	}
	view, _ := mgr.Query("pos")
	fmt.Println(view)
	// Output:
	// {[5]}
}

// ExampleSelfMaintainable classifies view definitions: select-project
// views never need base-table access to maintain (§1.2 of the paper).
func ExampleSelfMaintainable() {
	sch := dvm.NewSchema(dvm.Col("x", dvm.TInt))
	r := dvm.NewBase("R", sch)
	s := dvm.NewBase("S", sch)
	sp, _ := dvm.NewSelect(dvm.Gt(dvm.A("x"), dvm.C(0)), r)
	diff, _ := dvm.NewMonus(r, s)
	fmt.Println(dvm.SelfMaintainable(sp))
	fmt.Println(dvm.SelfMaintainable(diff))
	// Output:
	// true
	// false
}
