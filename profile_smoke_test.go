package dvm_test

import (
	"bytes"
	"runtime/pprof"
	"testing"

	"dvm/internal/bench"
	"dvm/internal/obs"
	"dvm/internal/obs/profparse"
)

// TestLabeledCPUProfile is the end-to-end check of the pprof-label
// plumbing: a CPU profile captured while a sharded engine runs the
// retail day (the same workload `dvmbench -shards 4 -cpuprofile`
// profiles) must contain samples labeled dvm_phase=propagate, and
// every dvm-labeled sample must carry a known phase and the view name.
// CPU profiles are statistical, so when the run is too quick to be
// sampled at all the test skips rather than flakes; with samples
// present, the labels must be there.
func TestLabeledCPUProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling run is not short")
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatal(err)
	}
	// Three sharded retail days ≈ several hundred milliseconds of
	// maintenance-heavy CPU — enough for the ~100Hz sampler to land
	// multiple samples inside the propagate regions.
	for i := 0; i < 3; i++ {
		if _, err := bench.ShardDayReport(4); err != nil {
			pprof.StopCPUProfile()
			t.Fatal(err)
		}
	}
	pprof.StopCPUProfile()

	p, err := profparse.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) == 0 {
		t.Skip("profiler captured no samples (machine too fast or clock too coarse)")
	}
	st := p.Attribution(1, obs.LabelPhase, obs.LabelPhase)
	if st.ByValue[obs.PhasePropagate] == 0 {
		t.Errorf("no CPU samples labeled %s=%s; phase breakdown: %v",
			obs.LabelPhase, obs.PhasePropagate, st.ByValue)
	}
	// Any sample carrying dvm_phase must carry a valid phase value, and
	// propagate samples must also identify the view they maintain.
	valid := map[string]bool{}
	for _, ph := range obs.Phases() {
		valid[ph] = true
	}
	for ph := range st.ByValue {
		if ph != "" && !valid[ph] {
			t.Errorf("sample labeled with unknown phase %q", ph)
		}
	}
	for _, s := range p.Samples {
		if s.Labels[obs.LabelPhase] == obs.PhasePropagate && s.Labels[obs.LabelView] != "hv" {
			t.Errorf("propagate-labeled sample missing %s=hv: %v", obs.LabelView, s.Labels)
		}
	}
	t.Logf("profile: %d samples, %.1f%% of CPU labeled, breakdown %v",
		len(p.Samples), 100*float64(st.Labeled)/float64(max64(st.Total, 1)), st.ByValue)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
