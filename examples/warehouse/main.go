// Warehouse shows the data-warehouse use case that motivated deferred
// maintenance: many materialized views over shared base tables, bulk
// loads from source systems, analysts querying the (possibly stale)
// views, and an on-demand refresh before a reporting run — all through
// the embedded SQL dialect.
package main

import (
	"fmt"
	"log"

	"dvm/internal/sql"
)

func main() {
	e := sql.NewEngine()
	must := func(stmt string) *sql.Result {
		r, err := e.Exec(stmt)
		if err != nil {
			log.Fatalf("%s\n-> %v", stmt, err)
		}
		return r
	}

	// Source-system tables.
	must(`CREATE TABLE customer (custId INT, name STRING, region STRING, score STRING)`)
	must(`CREATE TABLE sales (custId INT, itemNo INT, quantity INT, salesPrice FLOAT)`)
	must(`CREATE TABLE returns (custId INT, itemNo INT, quantity INT)`)

	must(`INSERT INTO customer VALUES
		(1, 'acme', 'east', 'High'),
		(2, 'blix', 'west', 'Low'),
		(3, 'cogs', 'east', 'High'),
		(4, 'dyna', 'west', 'High')`)
	must(`INSERT INTO sales VALUES
		(1, 100, 5, 9.99), (1, 101, 2, 4.50),
		(2, 100, 1, 9.99), (3, 102, 7, 2.25),
		(4, 103, 3, 19.00), (4, 100, 1, 9.99)`)
	must(`INSERT INTO returns VALUES (1, 100, 1)`)

	// Warehouse views under different maintenance regimes.
	// High-value sales: the workhorse — combined scenario for fast
	// refresh with cheap logging.
	must(`CREATE MATERIALIZED VIEW hv_sales REFRESH DEFERRED COMBINED AS
		SELECT c.custId, c.name, c.region, s.itemNo, s.quantity
		FROM customer c, sales s
		WHERE c.custId = s.custId AND c.score = 'High' AND s.quantity != 0`)

	// East-region activity: plain logged scenario (rarely refreshed).
	must(`CREATE MATERIALIZED VIEW east_sales REFRESH DEFERRED LOGGED AS
		SELECT c.name, s.itemNo, s.quantity
		FROM customer c, sales s
		WHERE c.custId = s.custId AND c.region = 'east'`)

	// Sales net of returns, per (customer, item): a difference view —
	// exactly the class where the state bug bites naive implementations.
	must(`CREATE MATERIALIZED VIEW net_activity REFRESH DEFERRED COMBINED MIN AS
		SELECT s.custId, s.itemNo FROM sales s
		MONUS
		SELECT r.custId, r.itemNo FROM returns r`)

	fmt.Println("== initial loads ==")
	fmt.Println(must(`SELECT * FROM hv_sales`))
	fmt.Println()

	// Overnight feed: bulk updates from the stores.
	fmt.Println("== overnight feed arrives (views stay stale; txns only log) ==")
	must(`INSERT INTO sales VALUES (3, 104, 9, 1.10), (1, 100, 2, 9.99)`)
	must(`INSERT INTO returns VALUES (4, 103, 1)`)
	must(`DELETE FROM sales WHERE custId = 2`) // store 2's feed was bad; resent later
	for _, v := range []string{"hv_sales", "east_sales", "net_activity"} {
		must("CHECK INVARIANT " + v)
	}
	fmt.Println(must(`SELECT * FROM hv_sales WHERE itemNo = 104`).String() + "   <- stale: feed not visible yet")
	fmt.Println()

	// Background propagation keeps refresh cheap without touching views.
	fmt.Println("== hourly propagation (no view downtime) ==")
	must(`PROPAGATE hv_sales`)
	must(`PROPAGATE net_activity`)
	must(`CHECK INVARIANT hv_sales`)

	// The morning reporting run refreshes on demand, then queries.
	fmt.Println("== reporting run: on-demand refresh, then analytics ==")
	must(`PARTIAL REFRESH hv_sales`) // applies the precomputed delta only
	must(`REFRESH east_sales`)       // pays for the whole log at once
	must(`REFRESH net_activity`)
	fmt.Println(must(`SELECT * FROM hv_sales WHERE itemNo = 104`))
	fmt.Println()
	fmt.Println(must(`SELECT name, itemNo FROM east_sales`))
	fmt.Println()
	fmt.Println(must(`SELECT * FROM net_activity WHERE custId = 4`))
	fmt.Println()

	// Analysts aggregate over the refreshed views.
	fmt.Println("== morning report: quantity by region (aggregating over the view) ==")
	fmt.Println(must(`SELECT v.region, SUM(v.quantity) AS units, COUNT(*) AS line_items
		FROM hv_sales v GROUP BY v.region`))
	fmt.Println()

	for _, v := range []string{"hv_sales", "east_sales", "net_activity"} {
		must("CHECK INVARIANT " + v)
	}
	fmt.Println(must(`SHOW VIEWS`))
	fmt.Println("\nAll invariants hold after the reporting run.")
}
