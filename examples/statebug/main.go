// Statebug walks through the paper's Examples 1.2 and 1.3 step by step,
// showing how the pre-update incremental algorithm produces wrong
// answers when its queries are evaluated after the base tables have
// already been modified — and how the post-update algorithm of Section 4
// avoids the bug.
package main

import (
	"fmt"
	"log"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/delta"
	"dvm/internal/schema"
)

func main() {
	example12()
	example13()
}

// example12: U(A) = Π_A(σ_{R.B=S.B}(R × S)), insert [a1,b2] into R and
// [b2,c2] into S in one transaction.
func example12() {
	fmt.Println("=== Example 1.2: join view, wrong multiplicities ===")
	rsch := schema.NewSchema(schema.Col("R.A", schema.TString), schema.Col("R.B", schema.TString))
	ssch := schema.NewSchema(schema.Col("S.B", schema.TString), schema.Col("S.C", schema.TString))

	pre := algebra.MapSource{
		"R": bag.Of(schema.Row("a1", "b1")),
		"S": bag.Of(schema.Row("b1", "c1"), schema.Row("b2", "c2")),
	}
	insR := bag.Of(schema.Row("a1", "b2"))
	insS := bag.Of(schema.Row("b2", "c2"))
	post := algebra.MapSource{
		"R": bag.UnionAll(pre["R"], insR),
		"S": bag.UnionAll(pre["S"], insS),
	}

	join, err := algebra.JoinOn(algebra.NewBase("R", rsch), algebra.NewBase("S", ssch),
		algebra.Eq(algebra.A("R.B"), algebra.A("S.B")))
	check(err)
	q, err := algebra.NewProject([]string{"R.A"}, []string{"A"}, join)
	check(err)

	log_ := delta.ChangeSet{
		"R": {Deleted: algebra.NewLiteral(rsch, bag.New()), Inserted: algebra.NewLiteral(rsch, insR)},
		"S": {Deleted: algebra.NewLiteral(ssch, bag.New()), Inserted: algebra.NewLiteral(ssch, insS)},
	}

	muPre := eval(q, pre)
	muPost := eval(q, post)
	fmt.Printf("MU before txn: %s\nMU after txn:  %s  (net insert: %d copies)\n",
		muPre, muPost, muPost.Len()-muPre.Len())

	_, preAdd, err := delta.PreUpdate(log_, q)
	check(err)
	fmt.Printf("pre-update △MU evaluated PRE-state:    %s  ✓\n", eval(preAdd, pre))

	_, naiveAdd, err := delta.NaivePostUpdate(log_, q)
	check(err)
	fmt.Printf("pre-update △MU evaluated POST-state:   %s  ← STATE BUG (4 copies)\n", eval(naiveAdd, post))

	mvDel, mvAdd, err := delta.PostUpdate(log_, q)
	check(err)
	refreshed := bag.UnionAll(bag.Monus(muPre, eval(mvDel, post)), eval(mvAdd, post))
	fmt.Printf("our post-update refresh:               %s  ✓\n\n", refreshed)
}

// example13: U = R − S (monus); move [b] from R into S.
func example13() {
	fmt.Println("=== Example 1.3: difference view, lost deletion ===")
	sch := schema.NewSchema(schema.Col("x", schema.TString))
	pre := algebra.MapSource{
		"R": bag.Of(schema.Row("a"), schema.Row("b"), schema.Row("c")),
		"S": bag.Of(schema.Row("c"), schema.Row("d")),
	}
	delR := bag.Of(schema.Row("b"))
	insS := bag.Of(schema.Row("b"))
	post := algebra.MapSource{
		"R": bag.Monus(pre["R"], delR),
		"S": bag.UnionAll(pre["S"], insS),
	}
	q, err := algebra.NewMonus(algebra.NewBase("R", sch), algebra.NewBase("S", sch))
	check(err)
	log_ := delta.ChangeSet{
		"R": {Deleted: algebra.NewLiteral(sch, delR), Inserted: algebra.NewLiteral(sch, bag.New())},
		"S": {Deleted: algebra.NewLiteral(sch, bag.New()), Inserted: algebra.NewLiteral(sch, insS)},
	}

	muPre := eval(q, pre)
	muPost := eval(q, post)
	fmt.Printf("MU before txn: %s\nMU after txn:  %s\n", muPre, muPost)

	nDel, nAdd, err := delta.NaivePostUpdate(log_, q)
	check(err)
	naive := bag.UnionAll(bag.Monus(muPre, eval(nDel, post)), eval(nAdd, post))
	fmt.Printf("naive post-state refresh keeps [b]:  %s  ← STATE BUG\n", naive)

	oDel, oAdd, err := delta.PostUpdate(log_, q)
	check(err)
	ours := bag.UnionAll(bag.Monus(muPre, eval(oDel, post)), eval(oAdd, post))
	fmt.Printf("our post-update refresh:             %s  ✓\n", ours)
}

func eval(e algebra.Expr, st algebra.MapSource) *bag.Bag {
	b, err := algebra.Eval(e, st)
	check(err)
	return b
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
