// Quickstart: define a deferred materialized view over two tables,
// update the base tables, watch the view go stale, and refresh it with
// the paper's post-update incremental algorithm — all through the
// library's Go API (no SQL).
package main

import (
	"fmt"
	"log"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/core"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

func main() {
	// 1. A database with two external tables.
	db := storage.NewDatabase()
	userSch := schema.NewSchema(
		schema.Col("u.id", schema.TInt),
		schema.Col("u.name", schema.TString),
	)
	orderSch := schema.NewSchema(
		schema.Col("o.userId", schema.TInt),
		schema.Col("o.amount", schema.TFloat),
	)
	users, err := db.Create("users", userSch, storage.External)
	if err != nil {
		log.Fatal(err)
	}
	orders, err := db.Create("orders", orderSch, storage.External)
	if err != nil {
		log.Fatal(err)
	}
	check(users.Insert(schema.Row(1, "ann"), 1))
	check(users.Insert(schema.Row(2, "bob"), 1))
	check(orders.Insert(schema.Row(1, 10.0), 1))

	// 2. A view: big orders joined with their users.
	join, err := algebra.JoinOn(
		algebra.NewBase("users", userSch),
		algebra.NewBase("orders", orderSch),
		algebra.AndOf(
			algebra.Eq(algebra.A("u.id"), algebra.A("o.userId")),
			algebra.Gt(algebra.A("o.amount"), algebra.C(5.0)),
		))
	check(err)
	def, err := algebra.NewProject(
		[]string{"u.name", "o.amount"}, []string{"name", "amount"}, join)
	check(err)

	// 3. Register it under the Combined scenario (INV_C): cheap
	// per-transaction logging plus precomputable refresh.
	mgr := core.NewManager(db)
	if _, err := mgr.DefineView("bigOrders", def, core.Combined); err != nil {
		log.Fatal(err)
	}
	show(mgr, "initial view")

	// 4. A user transaction; the manager extends it with log upkeep.
	tx := txn.Insert("orders", bag.Of(
		schema.Row(2, 25.0),
		schema.Row(1, 3.0), // filtered out by the predicate
	))
	check(mgr.Execute(tx))
	show(mgr, "after insert (stale — deferred!)")

	// 5. Propagate changes into the differential tables (no downtime),
	// then refresh (applies the precomputed delta under the view lock).
	check(mgr.Propagate("bigOrders"))
	check(mgr.PartialRefresh("bigOrders"))
	show(mgr, "after propagate + partial refresh")

	// 6. The invariant machinery is available for auditing.
	if err := mgr.CheckInvariant("bigOrders"); err != nil {
		log.Fatal(err)
	}
	if err := mgr.CheckConsistent("bigOrders"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("INV_C holds and the view is consistent. Done.")
}

func show(mgr *core.Manager, label string) {
	b, err := mgr.Query("bigOrders")
	check(err)
	fmt.Printf("%s: %s\n", label, b)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
