// Retail reproduces Examples 1.1 and 5.4 end to end: point-of-sale
// inserts stream into a sales table, a join view over high-value
// customers is maintained under the Combined (INV_C) scenario, changes
// propagate every k=1 "hour", and the view refreshes every m=24 "hours"
// — comparing Policy 1 (refresh_C) with Policy 2 (partial_refresh_C) and
// with the plain BaseLogs scenario's whole-day refresh.
package main

import (
	"fmt"
	"log"
	"time"

	"dvm/internal/core"
	"dvm/internal/obs"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

const (
	hoursPerDay  = 24 // m
	propagateK   = 1  // k
	salesPerHour = 120
	returnsPerHr = 20
)

func main() {
	fmt.Println("Retail warehouse (Example 5.4): m=24h refresh, k=1h propagate")
	fmt.Println()

	type variantResult struct {
		name        string
		downtimeUS  int64
		perTxnUS    int64
		propagateUS int64
	}
	var results []variantResult

	variants := []struct {
		name   string
		sc     core.Scenario
		policy core.Policy
	}{
		{"BaseLogs: refresh once a day", core.BaseLogs,
			core.Policy{RefreshEvery: hoursPerDay}},
		{"Combined Policy 1: hourly propagate + daily refresh_C", core.Combined,
			core.Policy{PropagateEvery: propagateK, RefreshEvery: hoursPerDay}},
		{"Combined Policy 2: hourly propagate + daily partial_refresh", core.Combined,
			core.Policy{PropagateEvery: propagateK, RefreshEvery: hoursPerDay, Partial: true}},
	}

	for _, v := range variants {
		db := storage.NewDatabase()
		w := workload.NewRetail(workload.DefaultRetailConfig())
		check(w.Setup(db))
		mgr := core.NewManager(db)
		def, err := w.ViewDef()
		check(err)
		_, err = mgr.DefineView("highValue", def, v.sc)
		check(err)
		runner, err := mgr.NewRunner("highValue", v.policy)
		check(err)

		// One simulated day.
		for hour := 0; hour < hoursPerDay; hour++ {
			check(mgr.Execute(w.SalesBatch(salesPerHour)))
			check(mgr.Execute(w.MixedBatch(0, returnsPerHr)))
			check(runner.Tick())
		}

		// All numbers come from the engine's own obs histograms — the
		// same ones dvmsh \stats and cmd/dvmstatsd expose (see
		// docs/observability.md).
		snap := mgr.Obs().Snapshot()
		down := histOf(snap, "view_downtime_ns", "highValue")
		mk := histOf(snap, "makesafe_ns", "highValue")
		prop := histOf(snap, "propagate_ns", "highValue")
		perTxn := int64(0)
		if mk.Count > 0 {
			perTxn = time.Duration(mk.Sum / mk.Count).Microseconds()
		}
		results = append(results, variantResult{
			name:        v.name,
			downtimeUS:  time.Duration(down.Max).Microseconds(),
			perTxnUS:    perTxn,
			propagateUS: time.Duration(prop.Sum).Microseconds(),
		})

		// End-of-day audit: after a final full refresh the view is exact.
		check(mgr.Refresh("highValue"))
		check(mgr.CheckConsistent("highValue"))
	}

	fmt.Printf("%-55s %15s %12s %15s\n", "variant", "downtime µs", "µs/txn", "propagate µs")
	for _, r := range results {
		fmt.Printf("%-55s %15d %12d %15d\n", r.name, r.downtimeUS, r.perTxnUS, r.propagateUS)
	}
	fmt.Println()
	fmt.Println("Expected shape (paper §5.3): Policy 2 has the least downtime, Policy 1")
	fmt.Println("beats BaseLogs because its refresh only processes one hour of log.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func histOf(snap obs.Snapshot, family, label string) obs.Metric {
	m, ok := snap.Get(family, label)
	if !ok {
		log.Fatalf("metric %s{%s} not in snapshot", family, label)
	}
	return m
}
