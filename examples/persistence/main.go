// Persistence demonstrates warehouse snapshots: a day of activity is
// saved to disk, the process "restarts", and the restored engine resumes
// deferred maintenance exactly where the data left off — views are
// re-materialized consistent from the restored base tables.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dvm"
)

func main() {
	snap := filepath.Join(os.TempDir(), "dvm-example-snapshot.bin")
	defer func() { _ = os.Remove(snap) }() // best-effort temp cleanup

	// Day 1: build the warehouse and take a snapshot at close of business.
	day1 := dvm.NewEngine()
	mustRun(day1, `
		CREATE TABLE sales (custId INT, itemNo INT, quantity INT, salesPrice FLOAT);
		CREATE TABLE customer (custId INT, name STRING, address STRING, score STRING);
		INSERT INTO customer VALUES
			(1, 'ann', 'a st', 'High'), (2, 'bob', 'b st', 'Low'), (3, 'cat', 'c st', 'High');
		CREATE MATERIALIZED VIEW hv REFRESH DEFERRED COMBINED AS
			SELECT c.custId, c.name, s.itemNo, s.quantity
			FROM customer c, sales s
			WHERE c.custId = s.custId AND c.score = 'High' AND s.quantity != 0;
		INSERT INTO sales VALUES (1, 10, 2, 9.99), (3, 11, 1, 4.50), (2, 10, 1, 9.99);
		REFRESH hv;
	`)
	show(day1, "day 1, close of business")

	f, err := os.Create(snap)
	check(err)
	check(day1.SaveTo(f))
	check(f.Close())
	fi, _ := os.Stat(snap)
	fmt.Printf("snapshot written: %s (%d bytes)\n\n", snap, fi.Size())

	// Day 2: a fresh process restores the snapshot and keeps going.
	g, err := os.Open(snap)
	check(err)
	day2, err := dvm.LoadEngine(g)
	check(err)
	check(g.Close())
	show(day2, "day 2, after restore (views re-materialized consistent)")

	mustRun(day2, `
		INSERT INTO sales VALUES (1, 12, 5, 19.99);
		PROPAGATE hv;
		PARTIAL REFRESH hv;
		CHECK INVARIANT hv;
	`)
	show(day2, "day 2, after new sales + Policy 2 refresh")
}

func mustRun(e *dvm.Engine, script string) {
	if _, err := e.ExecScript(script); err != nil {
		log.Fatal(err)
	}
}

func show(e *dvm.Engine, label string) {
	r, err := e.Exec("SELECT * FROM hv")
	check(err)
	fmt.Printf("== %s ==\n%s\n\n", label, r)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
